//! Static-precision study — `repro precision`.
//!
//! Measures how much the context-sensitive per-bit interprocedural
//! layer ([`peppa_analysis::BitSummary`], k=1 call-site specialization,
//! interprocedural value facts, the live-store channel) tightens the
//! fault-reachability analysis over the legacy context-insensitive
//! 3-channel pipeline. Per benchmark it computes three masked-cell
//! tables over the same `value sids × 64 bits` fault space:
//!
//! * **coarse** — [`ReachOpts::coarse()`]: whole-param channel
//!   summaries, no specialization, no interprocedural value facts,
//!   static (liveness-blind) callee store channel. This reproduces the
//!   pre-BitSummary pipeline exactly.
//! * **fine** — [`ReachOpts::default()`]: the full per-bit analysis.
//! * **union** — fine ∪ input-specific deviation analysis on the
//!   benchmark's reference input — the table a `--static-prune`
//!   campaign actually uses
//!   ([`peppa_analysis::deviation::combined_skip_cells`]).
//!
//! Raw masked-cell counts understate what a campaign gains, so each
//! table is also reported as the *exec-weighted predicted skip ratio*
//! ([`StaticPrune::predicted_skip_ratio`]) under the reference input's
//! golden profile — the exact fraction of uniformly-sampled fault
//! trials the table would skip.
//!
//! Two gates make this a regression test rather than a scoreboard:
//!
//! 1. **Monotonicity** — per cell, `fine ⊇ coarse`. Per-bit transfers
//!    are always contained in the channel join, specialization only
//!    shrinks transfers, and the live-store/interproc channels only
//!    remove live bits, so any violation is an analysis bug.
//! 2. **Floor** — the median union skip ratio across benchmarks must
//!    stay ≥ [`SKIP_RATIO_FLOOR`]. The honest measured median is
//!    ~0.017: the bundled benchmarks' live mass is control flow,
//!    addressing, and float accumulation, which no sound analysis may
//!    mask (hpccg is the documented all-live case). The issue's
//!    aspirational 0.10 target is recorded as [`SKIP_RATIO_TARGET`]
//!    and the per-benchmark gap reported, not gated on — `repro
//!    hybrid`'s bit-exact parity check is what keeps these numbers
//!    honest rather than inflatable.

use crate::scale::Ctx;
use peppa_analysis::deviation::combined_skip_cells;
use peppa_analysis::{CallGraph, FaultReach, ModuleSummaries, ReachOpts};
use peppa_apps::{all_benchmarks, Benchmark};
use peppa_inject::campaign::golden_run;
use peppa_inject::StaticPrune;
use serde::{Deserialize, Serialize};

/// Regression floor for the median exec-weighted union skip ratio.
/// Slightly below the measured 0.0170 so seed jitter cannot flake CI,
/// but any real precision loss (a summary channel going to ⊤) trips it.
pub const SKIP_RATIO_FLOOR: f64 = 0.015;

/// The aspirational target from the issue; reported, not gated.
pub const SKIP_RATIO_TARGET: f64 = 0.10;

/// One benchmark's before/after precision row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrecisionRow {
    pub benchmark: String,
    /// Masked cells of the `value sids × 64 bits` space, legacy
    /// context-insensitive pipeline ([`ReachOpts::coarse`]).
    pub coarse_masked_cells: u64,
    /// Masked cells under the full per-bit interprocedural analysis.
    pub fine_masked_cells: u64,
    /// Masked cells of fine ∪ deviation on the reference input — the
    /// table `--static-prune` campaigns use.
    pub union_masked_cells: u64,
    pub total_cells: u64,
    /// Exec-weighted predicted skip ratios under the reference input.
    pub coarse_skip_ratio: f64,
    pub fine_skip_ratio: f64,
    pub union_skip_ratio: f64,
    /// k=1 specialized call sites whose summary differs from the base.
    pub spec_sites: usize,
    /// Per-cell `fine ⊇ coarse` containment (must always hold).
    pub monotone: bool,
    /// Shortfall against the aspirational target (0 when met).
    pub gap_to_target: f64,
}

/// `repro precision` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrecisionReport {
    pub rows: Vec<PrecisionRow>,
    pub median_union_skip_ratio: f64,
    pub skip_ratio_floor: f64,
    pub skip_ratio_target: f64,
    pub seed: u64,
    pub smoke: bool,
}

impl PrecisionReport {
    /// CI gate: per-cell monotonicity everywhere and the median
    /// exec-weighted union skip ratio at or above the floor.
    pub fn sound(&self) -> bool {
        self.rows.iter().all(|r| r.monotone)
            && self.median_union_skip_ratio >= self.skip_ratio_floor
    }
}

fn masked_count(widths: &[u8], cells: &[u64]) -> u64 {
    widths
        .iter()
        .zip(cells)
        .filter(|(&w, _)| w != 0)
        .map(|(_, &c)| c.count_ones() as u64)
        .sum()
}

/// Computes one benchmark's precision row.
pub fn precision_benchmark(bench: &Benchmark, ctx: &Ctx) -> PrecisionRow {
    let burst = 0u8;
    let coarse = FaultReach::analyze_opts(&bench.module, ReachOpts::coarse());
    let fine = FaultReach::analyze(&bench.module);
    let coarse_cells = coarse.skip_cells(burst);
    let fine_cells = fine.skip_cells(burst);
    let union_cells = combined_skip_cells(
        &bench.module,
        &fine,
        &bench.reference_input,
        ctx.limits,
        burst,
    );

    let golden = golden_run(&bench.module, &bench.reference_input, ctx.limits).expect("golden run");
    let exec = &golden.profile.exec_counts;
    let vd = golden.profile.value_dynamic;
    let ratio = |cells: &[u64]| {
        StaticPrune {
            cells: cells.to_vec(),
            burst,
        }
        .predicted_skip_ratio(exec, vd)
    };

    let cg = CallGraph::new(&bench.module);
    let sums = ModuleSummaries::compute(&bench.module, &cg);

    let monotone = coarse_cells
        .iter()
        .zip(&fine_cells)
        .all(|(&c, &f)| c & !f == 0);
    let union_skip_ratio = ratio(&union_cells);

    PrecisionRow {
        benchmark: bench.name.to_string(),
        coarse_masked_cells: masked_count(&fine.widths, &coarse_cells),
        fine_masked_cells: masked_count(&fine.widths, &fine_cells),
        union_masked_cells: masked_count(&fine.widths, &union_cells),
        total_cells: 64 * fine.widths.iter().filter(|&&w| w != 0).count() as u64,
        coarse_skip_ratio: ratio(&coarse_cells),
        fine_skip_ratio: ratio(&fine_cells),
        union_skip_ratio,
        spec_sites: sums.spec.len(),
        monotone,
        gap_to_target: (SKIP_RATIO_TARGET - union_skip_ratio).max(0.0),
    }
}

/// Runs the precision study over every bundled benchmark. The study is
/// purely static plus one golden run per benchmark, so `smoke` only
/// tags the report; the full study already fits CI budgets.
pub fn run_precision(ctx: &Ctx, smoke: bool) -> PrecisionReport {
    let rows: Vec<PrecisionRow> = all_benchmarks()
        .iter()
        .map(|b| precision_benchmark(b, ctx))
        .collect();
    let mut ratios: Vec<f64> = rows.iter().map(|r| r.union_skip_ratio).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_union_skip_ratio = if ratios.is_empty() {
        0.0
    } else {
        ratios[ratios.len() / 2]
    };
    PrecisionReport {
        rows,
        median_union_skip_ratio,
        skip_ratio_floor: SKIP_RATIO_FLOOR,
        skip_ratio_target: SKIP_RATIO_TARGET,
        seed: ctx.seed,
        smoke,
    }
}

/// Paper-shaped text rendering.
pub fn render_precision(r: &PrecisionReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(s, "Static-precision study: coarse (context-insensitive) vs fine (per-bit interprocedural) vs union (+deviation)").unwrap();
    writeln!(
        s,
        "{:<16} {:>14} {:>14} {:>14} {:>8} {:>8} {:>8} {:>5} {:>9}",
        "benchmark",
        "coarse cells",
        "fine cells",
        "union cells",
        "coarse%",
        "fine%",
        "union%",
        "spec",
        "monotone"
    )
    .unwrap();
    for row in &r.rows {
        writeln!(
            s,
            "{:<16} {:>7}/{:<6} {:>7}/{:<6} {:>7}/{:<6} {:>7.2}% {:>7.2}% {:>7.2}% {:>5} {:>9}",
            row.benchmark,
            row.coarse_masked_cells,
            row.total_cells,
            row.fine_masked_cells,
            row.total_cells,
            row.union_masked_cells,
            row.total_cells,
            row.coarse_skip_ratio * 100.0,
            row.fine_skip_ratio * 100.0,
            row.union_skip_ratio * 100.0,
            row.spec_sites,
            if row.monotone { "ok" } else { "VIOLATED" },
        )
        .unwrap();
    }
    writeln!(
        s,
        "median union skip ratio {:.4} (floor {:.3}, aspirational target {:.2})",
        r.median_union_skip_ratio, r.skip_ratio_floor, r.skip_ratio_target
    )
    .unwrap();
    writeln!(
        s,
        "precision gates: {}",
        if r.sound() {
            "OK — fine ⊇ coarse per cell on every benchmark; median skip ratio above floor"
        } else {
            "VIOLATED"
        }
    )
    .unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn precision_study_is_monotone_and_above_floor() {
        let ctx = Ctx::new(Scale::Quick, 2021);
        let r = run_precision(&ctx, true);
        assert_eq!(r.rows.len(), 7);
        for row in &r.rows {
            assert!(row.monotone, "{}: fine lost a coarse cell", row.benchmark);
            assert!(
                row.fine_masked_cells >= row.coarse_masked_cells,
                "{}: fine masks fewer cells than coarse",
                row.benchmark
            );
            assert!(
                row.union_masked_cells >= row.fine_masked_cells,
                "{}: union dropped a statically-masked cell",
                row.benchmark
            );
        }
        assert!(
            r.sound(),
            "median union skip ratio {} under floor {}",
            r.median_union_skip_ratio,
            r.skip_ratio_floor
        );
    }
}

//! Figure 6: heat maps of the SDC probability over a 2-D slice of the
//! input space.
//!
//! The paper draws HPCCG (dense-dark: almost any input is SDC-prone, so
//! random sampling works) against Pathfinder (sparse-dark: SDC-bound
//! inputs are rare, so random sampling fails). We sweep the two most
//! influential arguments of each benchmark and measure a small FI
//! campaign per grid cell, normalizing probabilities to [0, 1].

use crate::scale::Ctx;
use peppa_apps::{benchmark_by_name, Benchmark};
use peppa_inject::{run_campaign, CampaignConfig};
use peppa_stats::Summary;
use serde::{Deserialize, Serialize};

/// A rendered heat map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeatMap {
    pub benchmark: String,
    /// Names of the two swept arguments.
    pub x_arg: String,
    pub y_arg: String,
    pub x_values: Vec<f64>,
    pub y_values: Vec<f64>,
    /// Raw SDC probabilities, row-major `[y][x]`; `NaN` marks invalid
    /// inputs.
    pub sdc: Vec<Vec<f64>>,
    /// Probabilities normalized to [0, 1] over valid cells.
    pub normalized: Vec<Vec<f64>>,
    /// Percentile of a uniformly random cell's SDC probability relative
    /// to the maximum — the paper's "randomly sampled input lands at the
    /// Nth percentile" statistic.
    pub mean_percentile: f64,
}

/// The argument pair swept for each benchmark (chosen as the two most
/// behaviour-shaping dimensions).
fn sweep_args(bench: &Benchmark) -> (usize, usize) {
    match bench.name {
        "Pathfinder" => (0, 3),     // rows × spread
        "Needle" => (0, 2),         // len1 × penalty
        "Particlefilter" => (0, 2), // nparticles × noise
        "CoMD" => (0, 3),           // natoms × cutoff
        "Hpccg" => (0, 4),          // nx × tol
        "Xsbench" => (0, 1),        // nlookups × ngrid
        "FFT" => (0, 2),            // logn × amp
        other => panic!("unknown benchmark {other}"),
    }
}

/// Sweeps one benchmark's 2-D input slice at the context's resolution.
pub fn heatmap_benchmark(bench: &Benchmark, ctx: &Ctx) -> HeatMap {
    heatmap_custom(bench, ctx, ctx.heatmap_resolution(), ctx.heatmap_trials())
}

/// Sweeps with explicit resolution and per-cell trial count.
pub fn heatmap_custom(bench: &Benchmark, ctx: &Ctx, res: usize, trials: u32) -> HeatMap {
    let (xi, yi) = sweep_args(bench);
    let grid_axis = |arg: &peppa_apps::ArgSpec| -> Vec<f64> {
        (0..res)
            .map(|k| {
                let t = k as f64 / (res - 1) as f64;
                arg.clamp(arg.lo + t * (arg.hi - arg.lo))
            })
            .collect()
    };
    let x_values = grid_axis(&bench.args[xi]);
    let y_values = grid_axis(&bench.args[yi]);

    let mut sdc = vec![vec![f64::NAN; res]; res];
    let mut valid: Vec<f64> = Vec::new();
    for (yk, &y) in y_values.iter().enumerate() {
        for (xk, &x) in x_values.iter().enumerate() {
            let mut input = bench.reference_input.clone();
            input[xi] = x;
            input[yi] = y;
            let cfg = CampaignConfig {
                trials,
                seed: ctx.seed ^ ((yk as u64) << 32 | xk as u64),
                hang_factor: 8,
                threads: ctx.threads,
                burst: 0,
                engine: ctx.engine,
            };
            if let Ok(r) = run_campaign(&bench.module, &input, ctx.limits, cfg) {
                sdc[yk][xk] = r.sdc_prob();
                valid.push(r.sdc_prob());
            }
        }
    }

    let max = valid.iter().cloned().fold(0.0f64, f64::max);
    let normalized = sdc
        .iter()
        .map(|row| {
            row.iter()
                .map(|&p| {
                    if p.is_nan() || max == 0.0 {
                        f64::NAN
                    } else {
                        p / max
                    }
                })
                .collect()
        })
        .collect();

    // Mean percentile of a random cell (the Figure 6 discussion's
    // statistic: ~96th for HPCCG, ~2nd for Pathfinder).
    let mean = if valid.is_empty() {
        0.0
    } else {
        valid.iter().sum::<f64>() / valid.len() as f64
    };
    let mean_percentile = Summary::percentile_of(&valid, mean);

    HeatMap {
        benchmark: bench.name.to_string(),
        x_arg: bench.args[xi].name.to_string(),
        y_arg: bench.args[yi].name.to_string(),
        x_values,
        y_values,
        sdc,
        normalized,
        mean_percentile,
    }
}

/// Figure 6: the paper's two illustrative heat maps.
pub fn run_heatmaps(ctx: &Ctx) -> Vec<HeatMap> {
    ["Hpccg", "Pathfinder"]
        .iter()
        .map(|name| heatmap_benchmark(&benchmark_by_name(name).unwrap(), ctx))
        .collect()
}

/// ASCII rendering of a heat map (darker = higher SDC probability).
pub fn render_ascii(map: &HeatMap) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let mut s = format!(
        "{} — x: {}, y: {} (darker = higher SDC probability)\n",
        map.benchmark, map.x_arg, map.y_arg
    );
    for row in map.normalized.iter().rev() {
        for &v in row {
            let c = if v.is_nan() {
                b'?'
            } else {
                SHADES[((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1)]
            };
            s.push(c as char);
            s.push(c as char);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::{Ctx, Scale};

    #[test]
    fn small_heatmap_has_valid_cells() {
        let ctx = Ctx::new(Scale::Quick, 9);
        let b = peppa_apps::pathfinder::benchmark();
        let map = heatmap_custom(&b, &ctx, 4, 30);
        let valid = map.sdc.iter().flatten().filter(|p| !p.is_nan()).count();
        assert!(valid >= 8, "only {valid} valid cells");
        for row in &map.normalized {
            for &v in row {
                assert!(v.is_nan() || (0.0..=1.0).contains(&v));
            }
        }
        let ascii = render_ascii(&map);
        assert!(ascii.contains("Pathfinder"));
    }
}

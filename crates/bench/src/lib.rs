//! Experiment harness: regenerates every table and figure of the
//! PEPPA-X paper's evaluation.
//!
//! | Paper artifact | Module | `repro` subcommand |
//! |----------------|--------|--------------------|
//! | Figure 1 (overall SDC probability ranges)       | [`study`]       | `fig1` |
//! | Table 2 (coverage ↔ SDC correlation)            | [`study`]       | `table2` |
//! | Figure 2 (per-instruction SDC ranges, CoMD)     | [`ranks`]       | `fig2` |
//! | Table 3 (per-instruction ranking stability)     | [`ranks`]       | `table3` |
//! | Table 4 (FI-space pruning ratios)               | [`pruning_exp`] | `table4` |
//! | Table 5 (distribution-analysis time, ±heuristics)| [`pruning_exp`]| `table5` |
//! | Figure 5 (PEPPA-X vs baseline over generations) | [`search_exp`]  | `fig5` |
//! | Figure 6 (input-space SDC heat maps)            | [`heatmap`]     | `fig6` |
//! | Figure 7 (baseline with 5× search time)         | [`search_exp`]  | `fig7` |
//! | Figure 8 (total time vs generations)            | [`search_exp`]  | `fig8` |
//! | Table 6 (per-input evaluation time)             | [`search_exp`]  | `table6` |
//! | Figure 9 (stress-testing selective duplication) | [`protect_exp`] | `fig9` |
//!
//! Extensions (not in the paper): `repro static-rank` compares the
//! purely static SDC-masking predictor against FI ground truth
//! ([`static_rank`]), `repro hybrid` validates the interprocedural
//! fault-reachability analysis behind `--static-prune` campaigns —
//! exact outcome-count equality plus FI re-injection of provably-masked
//! cells ([`hybrid`]) — `repro precision` measures how much the
//! per-bit interprocedural summaries tighten the masked-cell tables
//! over the legacy context-insensitive pipeline, with a monotonicity
//! gate and a median-skip-ratio floor ([`precision`]) —
//! `repro provenance` cross-checks the shadow-
//! taint tracer against the static reach analysis (containment + static-
//! precision headroom, [`provenance`]), and `repro snapshot` measures
//! the checkpoint/fork campaign engine behind `--snapshots K` — wall-
//! clock speedup plus bit-identity with the classic runner
//! ([`snapshot_exp`]).
//!
//! Beyond the paper's artifacts, `repro baseline` measures VM and
//! campaign throughput per benchmark ([`baseline`]) and writes the
//! checked-in `BENCH_baseline.json` regression reference.
//!
//! Every experiment takes a [`Scale`]: `Quick` finishes in minutes on a
//! laptop; `Paper` uses the paper's trial counts (1,000-trial campaigns,
//! 100 trials/instruction, 1,000 GA generations) and runs for hours.

pub mod baseline;
pub mod faultmodel;
pub mod heatmap;
pub mod hybrid;
pub mod optstudy;
pub mod precision;
pub mod protect_exp;
pub mod provenance;
pub mod pruning_exp;
pub mod ranks;
pub mod render;
pub mod scale;
pub mod search_exp;
pub mod snapshot_exp;
pub mod static_rank;
pub mod study;

pub use scale::{Ctx, Scale};

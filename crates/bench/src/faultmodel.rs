//! Fault-model sensitivity: single vs multi-bit flips.
//!
//! §3.1.3 justifies the single-bit model by citing Sangchoolie et al.
//! (DSN'17 [47]): "there is little difference in SDC probabilities
//! between the single and multiple bit flips at the application level."
//! This experiment validates that premise on our substrate by running
//! identical campaigns under 1-, 2-, and 3-bit burst models.

use crate::scale::Ctx;
use peppa_apps::all_benchmarks;
use peppa_inject::{run_campaign, CampaignConfig};
use serde::{Deserialize, Serialize};

/// One benchmark's SDC probability per fault model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultModelRow {
    pub benchmark: String,
    /// SDC probability under 1-, 2-, 3-bit flips.
    pub sdc_by_bits: Vec<f64>,
    /// Crash probability under the same models.
    pub crash_by_bits: Vec<f64>,
}

/// Fault-model comparison report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultModelReport {
    pub rows: Vec<FaultModelRow>,
}

impl FaultModelReport {
    /// Largest SDC-probability deviation (in absolute percentage points)
    /// of any multi-bit model from the single-bit model.
    pub fn max_sdc_deviation(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| {
                r.sdc_by_bits[1..]
                    .iter()
                    .map(|p| (p - r.sdc_by_bits[0]).abs())
            })
            .fold(0.0, f64::max)
    }
}

/// Runs the comparison on every benchmark's reference input.
pub fn run_fault_models(ctx: &Ctx) -> FaultModelReport {
    let rows = all_benchmarks()
        .iter()
        .map(|b| {
            let mut sdc = Vec::new();
            let mut crash = Vec::new();
            for burst in 0u8..3 {
                let cfg = CampaignConfig {
                    trials: ctx.campaign_trials(),
                    seed: ctx.seed, // same sites and bits; only the model differs
                    hang_factor: 8,
                    threads: ctx.threads,
                    burst,
                    engine: ctx.engine,
                };
                let r = run_campaign(&b.module, &b.reference_input, ctx.limits, cfg)
                    .expect("reference input runs");
                sdc.push(r.sdc_prob());
                crash.push(r.crash_prob());
            }
            FaultModelRow {
                benchmark: b.name.to_string(),
                sdc_by_bits: sdc,
                crash_by_bits: crash,
            }
        })
        .collect();
    FaultModelReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::{Ctx, Scale};

    #[test]
    fn multi_bit_model_changes_sdc_little() {
        // The §3.1.3 premise, on two kernels at reduced trials.
        let mut ctx = Ctx::new(Scale::Quick, 6);
        ctx.threads = 0;
        let b = peppa_apps::pathfinder::benchmark();
        let mut probs = Vec::new();
        for burst in 0u8..3 {
            let cfg = CampaignConfig {
                trials: 200,
                seed: 6,
                hang_factor: 8,
                threads: 0,
                burst,
                ..Default::default()
            };
            let r = run_campaign(&b.module, &b.reference_input, ctx.limits, cfg).unwrap();
            probs.push(r.sdc_prob());
        }
        for p in &probs[1..] {
            assert!(
                (p - probs[0]).abs() < 0.15,
                "multi-bit SDC deviates strongly: {probs:?}"
            );
        }
    }
}

//! Performance baseline: VM and campaign throughput per benchmark.
//!
//! Wall/rate figures come from [`MetricsRegistry`] snapshots of
//! instrumented campaigns — the same counters any `--metrics-out` run
//! produces — so the checked-in `BENCH_baseline.json` stays comparable
//! with ad-hoc measurements. Trial-latency percentiles are computed from
//! the *exact* per-trial samples streamed through [`Event::TrialFinished`]
//! (the registry's log₂-bucket histogram only yields power-of-two
//! quantiles, useless for regression diffing). Baselines let a future
//! change be checked for interpreter, compiled-engine, or campaign-runner
//! regressions with one `repro baseline` run.

use crate::scale::Ctx;
use peppa_apps::all_benchmarks;
use peppa_inject::{
    run_campaign_observed, run_campaign_pruned_gated, run_campaign_snapshotted, CampaignConfig,
    PruneGate, SnapshotConfig, StaticPrune,
};
use peppa_obs::{Event, MetricsRegistry, MultiObserver, Observer};
use peppa_vm::EngineKind;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// One benchmark's throughput measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineRow {
    pub benchmark: String,
    /// Dynamic instructions of the golden run at the reference input.
    pub golden_dynamic: u64,
    /// Campaign size the rates were measured at.
    pub trials: u32,
    /// Campaign throughput: trials per second of campaign wall time
    /// (includes the golden run; scales with `threads`; measured on the
    /// report's `engine`).
    pub trials_per_sec: f64,
    /// Single-core interpreter throughput: dynamic instructions per
    /// second, computed as `trials × golden_dynamic` over the *sum* of
    /// per-trial latencies (summing latencies across workers counts CPU
    /// time, not wall time, so this is thread-count independent).
    pub vm_instrs_per_sec_interp: f64,
    /// Same measurement on the compiled (register-allocated threaded
    /// bytecode) engine — identical seed and trial plan, so the two
    /// columns time bit-identical work.
    pub vm_instrs_per_sec_compiled: f64,
    /// `vm_instrs_per_sec_compiled / vm_instrs_per_sec_interp` — the
    /// dispatch-engine speedup on this benchmark's instruction mix.
    pub engine_speedup: f64,
    /// Trial-latency distribution from exact sorted samples
    /// (nearest-rank): median, tail, and extreme tail. A mean alone
    /// hides hang-budget outliers; the p99/p50 ratio is the regression
    /// signal for them.
    pub trial_latency_p50_ns: u64,
    pub trial_latency_p95_ns: u64,
    pub trial_latency_p99_ns: u64,
    /// Wall-clock seconds of the full campaign (directly timed).
    pub campaign_wall_s: f64,
    /// Wall-clock seconds of the same campaign under `--static-prune`
    /// (identical seed/trials; provably-masked cells skipped, behind
    /// the savings gate).
    pub pruned_campaign_wall_s: f64,
    /// Fraction of trials the pruned campaign skipped.
    pub pruned_skip_ratio: f64,
    /// Whether the prune gate engaged (predicted skip ratio strictly
    /// positive) — `false` means the pruned column measured the plain
    /// runner plus the gate's prediction cost.
    pub prune_applied: bool,
    /// The gate's predicted skip ratio for this benchmark's table.
    pub prune_predicted_skip_ratio: f64,
    /// Masked cells in the reach ∪ deviation table the pruned column
    /// ran with, over the `value sids × 64 bits` fault space.
    pub prune_masked_cells: u64,
    pub prune_total_cells: u64,
    /// Wall-clock seconds of the same campaign under `--snapshots K`
    /// (identical seed/trials; golden prefix amortized across trials).
    pub snapshot_campaign_wall_s: f64,
    /// `campaign_wall_s / snapshot_campaign_wall_s` — the measured
    /// trials-per-second improvement the fork engine buys.
    pub snapshot_speedup: f64,
    /// Dynamic-instruction reduction the `-O2` rewrite pipeline buys at
    /// the reference input (`1 - optimized/golden_dynamic`) — the
    /// regression signal for the optimizer itself.
    pub o2_instr_reduction: f64,
}

/// Version of the `BENCH_baseline.json` layout. Bumped when fields
/// change shape (v2: latency percentiles replaced the bare mean; v3:
/// snapshotted-campaign wall time/speedup and the prune-gate decision;
/// v4: per-engine `vm_instrs_per_sec` columns with the engine speedup,
/// and percentiles from exact samples instead of log₂ histogram
/// buckets; v5: the pruned column runs the reach ∪ deviation union
/// table for the reference input, records its masked-cell counts, and
/// the gate engages on any strictly-positive predicted skip ratio;
/// v6: the `o2_instr_reduction` column tracks the `-O2` rewrite
/// pipeline's dynamic-instruction savings at the reference input), so
/// downstream diffing tools can refuse mixed-schema comparisons.
pub const BASELINE_SCHEMA_VERSION: u32 = 6;

/// The checked-in `BENCH_baseline.json` payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineReport {
    pub schema_version: u32,
    pub scale: String,
    pub seed: u64,
    pub threads: usize,
    /// Engine the wall-clock columns (`trials_per_sec`,
    /// `campaign_wall_s`, prune/snapshot walls) were measured on. The
    /// per-engine `vm_instrs_per_sec` columns always cover both.
    pub engine: String,
    pub rows: Vec<BaselineRow>,
}

/// Collects exact per-trial latencies from the campaign event stream.
struct LatencySamples(Mutex<Vec<u64>>);

impl LatencySamples {
    fn new() -> Arc<LatencySamples> {
        Arc::new(LatencySamples(Mutex::new(Vec::new())))
    }

    /// Sorted samples, consumed once at end of campaign.
    fn sorted(&self) -> Vec<u64> {
        let mut v = self.0.lock().unwrap().clone();
        v.sort_unstable();
        v
    }

    fn sum_ns(&self) -> u64 {
        self.0.lock().unwrap().iter().sum()
    }
}

impl Observer for LatencySamples {
    fn on_event(&self, event: &Event) {
        if let Event::TrialFinished { latency_ns, .. } = event {
            self.0.lock().unwrap().push(*latency_ns);
        }
    }
}

/// Nearest-rank percentile over sorted samples: the smallest sample with
/// at least `q·n` samples at or below it. Always an observed value —
/// never an interpolated or bucket-boundary artifact.
fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// CPU seconds → single-core instrs/sec for a campaign of
/// `trials × golden_dynamic` dynamic instructions.
fn instrs_per_sec(trials: u64, golden_dynamic: u64, cpu_ns: u64) -> f64 {
    if cpu_ns == 0 {
        return 0.0;
    }
    trials as f64 * golden_dynamic as f64 / (cpu_ns as f64 / 1e9)
}

/// Measures every benchmark at the reference input.
///
/// `observer` additionally receives the full campaign event stream
/// (journal, progress) alongside the per-benchmark metrics registry the
/// rates are read from. The wall-clock columns run on `ctx.engine`; the
/// per-engine `vm_instrs_per_sec` columns always measure both engines on
/// an identical trial plan (and assert their outcomes agree).
pub fn run_baseline(ctx: &Ctx, observer: Arc<dyn Observer>) -> BaselineReport {
    let mut rows = Vec::new();
    for bench in all_benchmarks() {
        let registry = Arc::new(MetricsRegistry::new());
        let samples = LatencySamples::new();
        let mut fan = MultiObserver::new();
        fan.push(Arc::clone(&registry) as Arc<dyn Observer>);
        fan.push(Arc::clone(&samples) as Arc<dyn Observer>);
        fan.push(Arc::clone(&observer));

        let cfg = CampaignConfig {
            trials: ctx.campaign_trials(),
            seed: ctx.seed,
            hang_factor: 8,
            threads: ctx.threads,
            burst: 0,
            engine: ctx.engine,
        };
        let t0 = std::time::Instant::now();
        let r = run_campaign_observed(&bench.module, &bench.reference_input, ctx.limits, cfg, &fan)
            .unwrap_or_else(|e| panic!("{}: baseline campaign failed: {e}", bench.name));
        let campaign_wall_s = t0.elapsed().as_secs_f64();

        // The same trial plan on the *other* engine, so both per-engine
        // columns exist whichever engine the wall columns ran on. This
        // doubles as a cross-engine differential: the trial RNG streams
        // depend only on (seed, trial), so the outcome counts must be
        // bit-identical.
        let other_engine = match cfg.engine {
            EngineKind::Interp => EngineKind::Compiled,
            EngineKind::Compiled => EngineKind::Interp,
        };
        let other_samples = LatencySamples::new();
        let r_other = run_campaign_observed(
            &bench.module,
            &bench.reference_input,
            ctx.limits,
            CampaignConfig {
                engine: other_engine,
                ..cfg
            },
            &*other_samples,
        )
        .unwrap_or_else(|e| {
            panic!(
                "{}: {other_engine} baseline campaign failed: {e}",
                bench.name
            )
        });
        assert_eq!(
            (r.sdc, r.crash, r.hang, r.benign),
            (r_other.sdc, r_other.crash, r_other.hang, r_other.benign),
            "{}: engines disagreed on campaign outcomes",
            bench.name
        );
        let (interp_cpu_ns, compiled_cpu_ns) = match cfg.engine {
            EngineKind::Interp => (samples.sum_ns(), other_samples.sum_ns()),
            EngineKind::Compiled => (other_samples.sum_ns(), samples.sum_ns()),
        };

        // Same campaign with the static prune table: what `--static-prune`
        // buys on this machine. Timed directly, outside the metrics
        // registry, so the full campaign's counters stay untouched. The
        // gated runner is what the CLI now uses, so the baseline also
        // records whether the savings gate engaged for this table.
        let fr = peppa_analysis::FaultReach::analyze(&bench.module);
        let cells = peppa_analysis::deviation::combined_skip_cells(
            &bench.module,
            &fr,
            &bench.reference_input,
            ctx.limits,
            cfg.burst,
        );
        let prune_masked_cells: u64 = fr
            .widths
            .iter()
            .zip(&cells)
            .filter(|(&w, _)| w != 0)
            .map(|(_, &c)| c.count_ones() as u64)
            .sum();
        let prune_total_cells = 64 * fr.widths.iter().filter(|&&w| w != 0).count() as u64;
        let prune = StaticPrune {
            cells,
            burst: cfg.burst,
        };
        let t1 = std::time::Instant::now();
        let pruned = run_campaign_pruned_gated(
            &bench.module,
            &bench.reference_input,
            ctx.limits,
            cfg,
            &prune,
            PruneGate::default(),
        )
        .unwrap_or_else(|e| panic!("{}: pruned baseline campaign failed: {e}", bench.name));
        let pruned_campaign_wall_s = t1.elapsed().as_secs_f64();

        // Same campaign again under the snapshot/fork engine — identical
        // seed and trial count, so `snapshot_speedup` is the apples-to-
        // apples trials-per-second improvement the engine buys.
        let t2 = std::time::Instant::now();
        let snapped = run_campaign_snapshotted(
            &bench.module,
            &bench.reference_input,
            ctx.limits,
            cfg,
            SnapshotConfig {
                snapshots: ctx.campaign_snapshots(),
                converge_exit: true,
            },
        )
        .unwrap_or_else(|e| panic!("{}: snapshotted baseline campaign failed: {e}", bench.name));
        let snapshot_campaign_wall_s = t2.elapsed().as_secs_f64();
        debug_assert_eq!(
            (r.sdc, r.crash, r.hang, r.benign),
            (
                snapped.campaign.sdc,
                snapped.campaign.crash,
                snapped.campaign.hang,
                snapped.campaign.benign
            ),
            "{}: snapshotted baseline diverged from the full campaign",
            bench.name
        );

        // The optimizer's dynamic savings at the same reference input —
        // one golden run on the -O2 module, no campaign.
        let opt = peppa_analysis::optimize(&bench.module, peppa_analysis::OptLevel::O2);
        let opt_dynamic =
            peppa_inject::campaign::golden_run(&opt.module, &bench.reference_input, ctx.limits)
                .unwrap_or_else(|e| panic!("{}: optimized golden run failed: {e}", bench.name))
                .profile
                .dynamic;

        let trials = registry.counter_value("campaign.trials.finished");
        let golden_dynamic = registry.counter_value("golden.dynamic_instrs");
        let wall_s = registry.counter_value("campaign.wall_ns") as f64 / 1e9;
        let sorted = samples.sorted();
        debug_assert_eq!(sorted.len() as u64, trials);

        debug_assert_eq!(trials, r.trials as u64);
        let vm_instrs_per_sec_interp = instrs_per_sec(trials, golden_dynamic, interp_cpu_ns);
        let vm_instrs_per_sec_compiled = instrs_per_sec(trials, golden_dynamic, compiled_cpu_ns);
        rows.push(BaselineRow {
            benchmark: bench.name.to_string(),
            golden_dynamic,
            trials: r.trials,
            trials_per_sec: if wall_s > 0.0 {
                trials as f64 / wall_s
            } else {
                0.0
            },
            vm_instrs_per_sec_interp,
            vm_instrs_per_sec_compiled,
            engine_speedup: if vm_instrs_per_sec_interp > 0.0 {
                vm_instrs_per_sec_compiled / vm_instrs_per_sec_interp
            } else {
                0.0
            },
            trial_latency_p50_ns: percentile_ns(&sorted, 0.50),
            trial_latency_p95_ns: percentile_ns(&sorted, 0.95),
            trial_latency_p99_ns: percentile_ns(&sorted, 0.99),
            campaign_wall_s,
            pruned_campaign_wall_s,
            pruned_skip_ratio: pruned.result.skip_ratio(),
            prune_applied: pruned.decision.applied,
            prune_predicted_skip_ratio: pruned.decision.predicted_skip_ratio,
            prune_masked_cells,
            prune_total_cells,
            snapshot_campaign_wall_s,
            snapshot_speedup: if snapshot_campaign_wall_s > 0.0 {
                campaign_wall_s / snapshot_campaign_wall_s
            } else {
                0.0
            },
            o2_instr_reduction: 1.0 - opt_dynamic as f64 / golden_dynamic.max(1) as f64,
        });
    }
    BaselineReport {
        schema_version: BASELINE_SCHEMA_VERSION,
        scale: format!("{:?}", ctx.scale),
        seed: ctx.seed,
        threads: ctx.threads,
        engine: ctx.engine.as_str().to_string(),
        rows,
    }
}

/// Text rendering for the `repro baseline` subcommand.
pub fn render_baseline(r: &BaselineReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Throughput baseline ({} scale, {} trials-scale campaigns, {} engine)\n\n",
        r.scale,
        r.rows.first().map(|x| x.trials).unwrap_or(0),
        r.engine
    ));
    out.push_str(&format!(
        "{:<12} {:>14} {:>12} {:>13} {:>13} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6} {:>7} {:>8} {:>7}\n",
        "benchmark",
        "golden dyn",
        "trials/s",
        "interp i/s",
        "compiled i/s",
        "eng x",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "full s",
        "pruned s",
        "skip %",
        "gate",
        "snap s",
        "speedup",
        "O2 red"
    ));
    for row in &r.rows {
        out.push_str(&format!(
            "{:<12} {:>14} {:>12.1} {:>13.3e} {:>13.3e} {:>6.1}x {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>6.2}% {:>6} {:>7.2} {:>7.2}x {:>6.1}%\n",
            row.benchmark,
            row.golden_dynamic,
            row.trials_per_sec,
            row.vm_instrs_per_sec_interp,
            row.vm_instrs_per_sec_compiled,
            row.engine_speedup,
            row.trial_latency_p50_ns as f64 / 1e6,
            row.trial_latency_p95_ns as f64 / 1e6,
            row.trial_latency_p99_ns as f64 / 1e6,
            row.campaign_wall_s,
            row.pruned_campaign_wall_s,
            row.pruned_skip_ratio * 100.0,
            if row.prune_applied { "on" } else { "off" },
            row.snapshot_campaign_wall_s,
            row.snapshot_speedup,
            row.o2_instr_reduction * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use peppa_obs::NullObserver;

    #[test]
    fn nearest_rank_percentiles_are_observed_samples() {
        let sorted: Vec<u64> = vec![3, 10, 100, 1000, 77777];
        assert_eq!(percentile_ns(&sorted, 0.50), 100);
        assert_eq!(percentile_ns(&sorted, 0.95), 77777);
        assert_eq!(percentile_ns(&sorted, 0.99), 77777);
        assert_eq!(percentile_ns(&[], 0.5), 0);
        // q→0 still returns the smallest sample, not index underflow.
        assert_eq!(percentile_ns(&sorted, 0.0), 3);
    }

    #[test]
    fn baseline_rates_are_positive_and_percentiles_exact() {
        let mut ctx = Ctx::new(Scale::Quick, 1);
        // Tiny campaign: this test checks plumbing, not statistics.
        ctx.threads = 2;
        let (report, samples) = run_baseline_one_for_test(&ctx);
        assert!(report.trials_per_sec > 0.0);
        assert!(report.vm_instrs_per_sec_interp > 0.0);
        assert!(report.golden_dynamic > 0);
        assert!(report.trial_latency_p50_ns > 0);
        assert!(report.trial_latency_p50_ns <= report.trial_latency_p95_ns);
        assert!(report.trial_latency_p95_ns <= report.trial_latency_p99_ns);
        // The v4 fix: every percentile is an actually-observed latency,
        // not a log₂ bucket boundary (those were exact powers of two).
        for p in [
            report.trial_latency_p50_ns,
            report.trial_latency_p95_ns,
            report.trial_latency_p99_ns,
        ] {
            assert!(samples.contains(&p), "{p} not an observed sample");
        }
    }

    fn run_baseline_one_for_test(ctx: &Ctx) -> (BaselineRow, Vec<u64>) {
        let bench = peppa_apps::pathfinder::benchmark();
        let registry = Arc::new(MetricsRegistry::new());
        let samples = LatencySamples::new();
        let mut fan = MultiObserver::new();
        fan.push(Arc::clone(&registry) as Arc<dyn Observer>);
        fan.push(Arc::clone(&samples) as Arc<dyn Observer>);
        fan.push(Arc::new(NullObserver));
        let cfg = CampaignConfig {
            trials: 30,
            seed: ctx.seed,
            threads: ctx.threads,
            ..Default::default()
        };
        run_campaign_observed(&bench.module, &bench.reference_input, ctx.limits, cfg, &fan)
            .unwrap();
        let golden_dynamic = registry.counter_value("golden.dynamic_instrs");
        let sorted = samples.sorted();
        let row = BaselineRow {
            benchmark: bench.name.to_string(),
            golden_dynamic,
            trials: 30,
            trials_per_sec: registry.counter_value("campaign.trials.finished") as f64
                / (registry.counter_value("campaign.wall_ns") as f64 / 1e9),
            vm_instrs_per_sec_interp: instrs_per_sec(30, golden_dynamic, samples.sum_ns()),
            vm_instrs_per_sec_compiled: 0.0,
            engine_speedup: 0.0,
            trial_latency_p50_ns: percentile_ns(&sorted, 0.50),
            trial_latency_p95_ns: percentile_ns(&sorted, 0.95),
            trial_latency_p99_ns: percentile_ns(&sorted, 0.99),
            campaign_wall_s: 0.0,
            pruned_campaign_wall_s: 0.0,
            pruned_skip_ratio: 0.0,
            prune_applied: false,
            prune_predicted_skip_ratio: 0.0,
            prune_masked_cells: 0,
            prune_total_cells: 0,
            snapshot_campaign_wall_s: 0.0,
            snapshot_speedup: 0.0,
            o2_instr_reduction: 0.0,
        };
        (row, sorted)
    }
}

//! Static masking predictor vs FI ground truth.
//!
//! The `static-rank` experiment scores every static instruction with the
//! purely static SDC-masking predictor ([`peppa_analysis::predict_sdc`])
//! and with fault injection ([`per_instruction_sdc`]), then reports
//! Spearman's ρ between the two rankings per benchmark. A positive
//! correlation means the dataflow analyses (known bits, intervals,
//! observable liveness, sink attenuation) capture a real part of the
//! masking structure the paper measures dynamically — cheap static
//! triage before any fault is injected.

use crate::scale::{Ctx, Scale};
use peppa_analysis::predict_sdc;
use peppa_apps::{all_benchmarks, random_inputs, Benchmark};
use peppa_inject::{per_instruction_sdc, PerInstrConfig};
use peppa_stats::corr::spearman;
use serde::{Deserialize, Serialize};

/// One benchmark's static-vs-measured comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticRankRow {
    pub benchmark: String,
    /// Instructions with both a static score and an FI measurement.
    pub paired: usize,
    /// Spearman's ρ between static score and measured SDC probability.
    pub spearman: f64,
    /// Mean static score / mean measured probability over the pairs
    /// (calibration context for the rank correlation).
    pub mean_static: f64,
    pub mean_measured: f64,
}

/// `repro static-rank` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticRankReport {
    pub rows: Vec<StaticRankRow>,
    pub seed: u64,
    pub trials_per_instr: u32,
}

impl StaticRankReport {
    pub fn mean_spearman(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.spearman).sum::<f64>() / self.rows.len() as f64
    }
}

/// Compares the static predictor against per-instruction FI for one
/// benchmark, on one capped-workload random input.
pub fn static_rank_benchmark(bench: &Benchmark, ctx: &Ctx) -> StaticRankRow {
    let pred = predict_sdc(&bench.module);

    // Per-instruction FI costs (instrs × trials) whole-program runs, so
    // measure under a light-workload input, as the ranking study does.
    let cap = match ctx.scale {
        Scale::Quick => 150_000,
        Scale::Paper => 2_000_000,
    };
    let input = random_inputs(bench, 1, ctx.seed ^ 0x57a7, ctx.limits, cap)
        .pop()
        .expect("one valid input");

    let cfg = PerInstrConfig {
        trials_per_instr: ctx.per_instr_trials(),
        seed: ctx.seed,
        hang_factor: 8,
        threads: ctx.threads,
    };
    let measured = per_instruction_sdc(&bench.module, &input, ctx.limits, cfg, None)
        .expect("validated input must run");

    let mut xs = Vec::new(); // static score
    let mut ys = Vec::new(); // measured SDC probability
    for sid in 0..bench.module.num_instrs {
        if let (Some(s), Some(p)) = (pred.score[sid], measured.sdc_prob[sid]) {
            xs.push(s);
            ys.push(p);
        }
    }
    let rho = spearman(&xs, &ys);
    let n = xs.len().max(1) as f64;
    StaticRankRow {
        benchmark: bench.name.to_string(),
        paired: xs.len(),
        spearman: rho,
        mean_static: xs.iter().sum::<f64>() / n,
        mean_measured: ys.iter().sum::<f64>() / n,
    }
}

/// Runs the static-vs-FI comparison over every bundled benchmark.
pub fn run_static_rank(ctx: &Ctx) -> StaticRankReport {
    let rows = all_benchmarks()
        .iter()
        .map(|b| static_rank_benchmark(b, ctx))
        .collect();
    StaticRankReport {
        rows,
        seed: ctx.seed,
        trials_per_instr: ctx.per_instr_trials(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_rank_correlates_positively() {
        let mut ctx = Ctx::new(Scale::Quick, 2021);
        ctx.threads = 2;
        let r = run_static_rank(&ctx);
        assert_eq!(r.rows.len(), 7);
        for row in &r.rows {
            assert!(
                row.paired >= 10,
                "{}: only {} pairs",
                row.benchmark,
                row.paired
            );
            assert!(row.spearman.is_finite());
        }
        let positives = r.rows.iter().filter(|r| r.spearman > 0.0).count();
        assert!(positives >= 5, "only {positives}/7 positive: {:?}", r.rows);
        assert!(
            r.mean_spearman() > 0.0,
            "mean Spearman {} not positive",
            r.mean_spearman()
        );
    }
}

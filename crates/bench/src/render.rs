//! Plain-text rendering of experiment reports, shaped like the paper's
//! tables and figures.

use crate::heatmap::{render_ascii, HeatMap};
use crate::protect_exp::ProtectReport;
use crate::pruning_exp::{AnalysisTimeReport, PruningReport};
use crate::ranks::RankReport;
use crate::search_exp::{PerInputTimeReport, SearchReportAll};
use crate::study::StudyReport;
use std::fmt::Write;

fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Figure 1: per-benchmark SDC-probability ranges + reference marks.
pub fn render_fig1(r: &StudyReport) -> String {
    let mut s = String::from(
        "Figure 1 — Range of overall program SDC probability across random inputs\n\
         (ref = default reference input, as the paper's red marks)\n\n",
    );
    let _ = writeln!(
        s,
        "{:<15} {:>9} {:>9} {:>9} {:>9}  ref-percentile",
        "benchmark", "min", "max", "ref", "spread"
    );
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{:<15} {:>9} {:>9} {:>9} {:>9}  {:.0}% of random inputs exceed ref",
            row.benchmark,
            pct(row.sdc_min()),
            pct(row.sdc_max()),
            pct(row.reference.sdc_prob),
            pct(row.sdc_max() - row.sdc_min()),
            (1.0 - row.reference_percentile()) * 100.0,
        );
    }
    s
}

/// Table 2: coverage ↔ SDC-probability correlation.
pub fn render_table2(r: &StudyReport) -> String {
    let mut s = String::from(
        "Table 2 — Spearman correlation between code coverage and program SDC probability\n\n",
    );
    for row in &r.rows {
        let _ = writeln!(s, "{:<15} {:>6.2}", row.benchmark, row.coverage_correlation);
    }
    let _ = writeln!(
        s,
        "{:<15} {:>6.2}   (paper average: 0.01)",
        "average",
        r.mean_correlation()
    );
    s
}

/// Figure 2: per-instruction SDC-probability ranges (sampled).
pub fn render_fig2(r: &RankReport) -> String {
    let mut s =
        String::from("Figure 2 — Range of per-instruction SDC probabilities across inputs\n\n");
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{} ({} instructions measurable under all inputs):",
            row.benchmark, row.common_instrs
        );
        for ir in &row.sampled_ranges {
            let _ = writeln!(
                s,
                "  sid {:>5} {:<8} {:>9} .. {:<9}",
                ir.sid,
                ir.mnemonic,
                pct(ir.min),
                pct(ir.max)
            );
        }
    }
    s
}

/// Table 3: per-instruction ranking stability.
pub fn render_table3(r: &RankReport) -> String {
    let mut s = String::from(
        "Table 3 — Correlation between rankings of per-instruction SDC probabilities\n\
         across inputs (paper: 0.59–0.96)\n\n",
    );
    for row in &r.rows {
        let _ = writeln!(s, "{:<15} {:>6.2}", row.benchmark, row.rank_stability);
    }
    s
}

/// Table 4: pruning ratios, plus the known-bits-refined grouping.
pub fn render_table4(r: &PruningReport) -> String {
    let mut s = String::from(
        "Table 4 — FI-space pruning ratio (paper avg: 49.32%)\n\
         (refined = baseline subgroups split where members' known-bits differ)\n\n",
    );
    let _ = writeln!(
        s,
        "{:<15} {:>11} {:>8} {:>9} {:>12} {:>13}",
        "benchmark", "injectable", "groups", "ratio", "ref-groups", "ref-ratio"
    );
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{:<15} {:>11} {:>8} {:>9} {:>12} {:>13}",
            row.benchmark,
            row.injectable,
            row.groups,
            pct(row.pruning_ratio),
            row.refined_groups,
            pct(row.refined_ratio)
        );
    }
    let refined_avg = if r.rows.is_empty() {
        0.0
    } else {
        r.rows.iter().map(|x| x.refined_ratio).sum::<f64>() / r.rows.len() as f64
    };
    let _ = writeln!(
        s,
        "{:<15} {:>29} {:>26}",
        "average",
        pct(r.average_ratio()),
        pct(refined_avg)
    );
    s
}

/// Static predictor vs FI ground truth (`repro static-rank`).
pub fn render_static_rank(r: &crate::static_rank::StaticRankReport) -> String {
    let mut s = String::from(
        "Static-rank — Spearman's ρ between the static SDC-masking predictor\n\
         and FI-measured per-instruction SDC probability\n\n",
    );
    let _ = writeln!(
        s,
        "{:<15} {:>8} {:>9} {:>12} {:>14}",
        "benchmark", "paired", "spearman", "mean-static", "mean-measured"
    );
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{:<15} {:>8} {:>9.2} {:>12} {:>14}",
            row.benchmark,
            row.paired,
            row.spearman,
            pct(row.mean_static),
            pct(row.mean_measured)
        );
    }
    let _ = writeln!(s, "{:<15} {:>18.2}", "mean", r.mean_spearman());
    s
}

/// Table 5: analysis time with/without heuristics.
pub fn render_table5(r: &AnalysisTimeReport) -> String {
    let mut s = String::from(
        "Table 5 — Time for the analysis of SDC sensitivity distribution\n\
         (paper: 10.45h with vs 841.20h without, ≈84× speedup)\n\n",
    );
    let _ = writeln!(
        s,
        "{:<15} {:>12} {:>14} {:>9}",
        "benchmark", "with (s)", "without (s)", "speedup"
    );
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{:<15} {:>12.2} {:>14.2} {:>8.1}x",
            row.benchmark, row.with_heuristics_secs, row.without_heuristics_secs, row.speedup
        );
    }
    let _ = writeln!(s, "{:<15} {:>36} {:>8.1}x", "average", "", r.mean_speedup());
    s
}

/// Figure 5: PEPPA-X vs baseline across generation budgets.
pub fn render_fig5(r: &SearchReportAll) -> String {
    let mut s = String::from(
        "Figure 5 — Bounded SDC probability vs search budget (equal budgets per column)\n\n",
    );
    for row in &r.rows {
        let _ = writeln!(s, "{}:", row.benchmark);
        let _ = writeln!(
            s,
            "  {:>12} {:>12} {:>12} {:>16}",
            "generations", "PEPPA-X", "baseline", "budget (Mdyn)"
        );
        for p in &row.points {
            let _ = writeln!(
                s,
                "  {:>12} {:>12} {:>12} {:>16.1}",
                p.generation,
                pct(p.peppa_sdc),
                pct(p.baseline_sdc),
                p.budget_dynamic as f64 / 1e6
            );
        }
    }
    s
}

/// Figure 7: baseline with 5× more budget vs PEPPA-X at saturation.
pub fn render_fig7(r: &SearchReportAll) -> String {
    let mut s = String::from(
        "Figure 7 — PEPPA-X at the saturation checkpoint vs baseline with 5× more budget\n\n",
    );
    let _ = writeln!(
        s,
        "{:<15} {:>14} {:>16}",
        "benchmark", "PEPPA-X", "baseline (5x)"
    );
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{:<15} {:>14} {:>16}",
            row.benchmark,
            pct(row.peppa_at_saturation),
            pct(row.baseline_5x)
        );
    }
    s
}

/// Figure 8: timing breakdown.
pub fn render_fig8(r: &SearchReportAll) -> String {
    let mut s = String::from(
        "Figure 8 — PEPPA-X wall time: fixed analysis cost + per-generation search\n\n",
    );
    let _ = writeln!(
        s,
        "{:<15} {:>14} {:>13} {:>20}",
        "benchmark", "analysis (s)", "search (s)", "analysis (Mdyn)"
    );
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{:<15} {:>14.2} {:>13.2} {:>20.1}",
            row.benchmark,
            row.analysis_secs,
            row.search_secs,
            row.analysis_cost_dynamic as f64 / 1e6
        );
    }
    s
}

/// Table 6: per-input evaluation time.
pub fn render_table6(r: &PerInputTimeReport) -> String {
    let mut s = String::from(
        "Table 6 — Per-input evaluation time (paper: 3.94s vs 56508.84s, >4 orders)\n\n",
    );
    let _ = writeln!(
        s,
        "{:<15} {:>14} {:>16} {:>10}",
        "benchmark", "PEPPA-X (s)", "baseline (s)", "speedup"
    );
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{:<15} {:>14.6} {:>16.3} {:>9.0}x",
            row.benchmark, row.peppa_secs, row.baseline_secs, row.speedup
        );
    }
    let _ = writeln!(s, "{:<15} {:>41} {:>9.0}x", "average", "", r.mean_speedup());
    s
}

/// Figure 6: ASCII heat maps.
pub fn render_fig6(maps: &[HeatMap]) -> String {
    let mut s = String::from("Figure 6 — SDC-probability heat maps over the input space\n\n");
    for m in maps {
        s.push_str(&render_ascii(m));
        let _ = writeln!(
            s,
            "mean cell sits at the {:.0}th percentile of the map\n",
            m.mean_percentile * 100.0
        );
    }
    s
}

/// Fault-model sensitivity: single vs multi-bit flips.
pub fn render_faultmodel(r: &crate::faultmodel::FaultModelReport) -> String {
    let mut s = String::from(
        "Fault-model sensitivity — SDC probability under 1/2/3-bit flips\n\
         (§3.1.3's premise: multi-bit differs little at application level)\n\n",
    );
    let _ = writeln!(
        s,
        "{:<15} {:>9} {:>9} {:>9}",
        "benchmark", "1-bit", "2-bit", "3-bit"
    );
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{:<15} {:>9} {:>9} {:>9}",
            row.benchmark,
            pct(row.sdc_by_bits[0]),
            pct(row.sdc_by_bits[1]),
            pct(row.sdc_by_bits[2])
        );
    }
    let _ = writeln!(
        s,
        "\nmax deviation from single-bit: {}",
        pct(r.max_sdc_deviation())
    );
    s
}

/// Ablation: classic vs input-aware protection planning.
pub fn render_ablation(r: &crate::protect_exp::AblationReport) -> String {
    let mut s = String::from(
        "Ablation — input-aware protection planning (the paper's future work)\n\
         Coverage under the SDC-bound (stress) input, 50% overhead level:\n\n",
    );
    let _ = writeln!(
        s,
        "{:<15} {:>16} {:>15} {:>14} {:>13}",
        "benchmark", "classic-stress", "aware-stress", "classic-ref", "aware-ref"
    );
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{:<15} {:>16} {:>15} {:>14} {:>13}",
            row.benchmark,
            pct(row.classic_stress_coverage),
            pct(row.aware_stress_coverage),
            pct(row.classic_reference_coverage),
            pct(row.aware_reference_coverage)
        );
    }
    s
}

/// Figure 9: expected vs actual coverage per protection level.
pub fn render_fig9(r: &ProtectReport) -> String {
    let mut s = String::from(
        "Figure 9 — Stress-testing selective instruction duplication\n\
         (expected = knapsack's promise on the reference input;\n\
          actual = measured with PEPPA-X's SDC-bound input)\n\n",
    );
    for row in &r.rows {
        let _ = writeln!(s, "{}:", row.benchmark);
        let _ = writeln!(
            s,
            "  {:>7} {:>10} {:>11} {:>9} {:>11}",
            "level", "expected", "ref-meas.", "actual", "#protected"
        );
        for p in &row.points {
            let _ = writeln!(
                s,
                "  {:>6.0}% {:>10} {:>11} {:>9} {:>11}",
                p.level * 100.0,
                pct(p.expected_coverage),
                pct(p.reference_coverage),
                pct(p.actual_coverage),
                p.protected_instrs
            );
        }
    }
    let _ = writeln!(s, "\nper-level means (level, expected, actual):");
    for (l, e, a) in r.level_means() {
        let _ = writeln!(s, "  {:>4.0}%  {:>8}  {:>8}", l * 100.0, pct(e), pct(a));
    }
    s
}

//! Per-instruction SDC probabilities across inputs: Figure 2 and
//! Table 3 (§3.2.3).
//!
//! For several random inputs, measure every (measurable) instruction's
//! SDC probability, then (a) report ranges for a sample of instructions
//! (Figure 2, CoMD in the paper) and (b) compute the mean pairwise
//! Spearman correlation between the per-input rank lists (Table 3: 0.59
//! to 0.96 — "the SDC sensitivity distribution tends to remain
//! stationary").

use crate::scale::Ctx;
use peppa_apps::{all_benchmarks, random_inputs, Benchmark};
use peppa_inject::{per_instruction_sdc, PerInstrConfig};
use peppa_stats::corr::mean_pairwise_spearman;
use serde::{Deserialize, Serialize};

/// Figure 2's data: per-instruction probability ranges for sampled
/// instructions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstrRange {
    pub sid: u32,
    pub mnemonic: String,
    pub min: f64,
    pub max: f64,
}

/// One benchmark's ranking-stability measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankRow {
    pub benchmark: String,
    /// Table 3's entry: mean pairwise Spearman over the per-input rank
    /// lists.
    pub rank_stability: f64,
    /// Instructions measurable under every input.
    pub common_instrs: usize,
    /// Figure 2-style ranges for up to 10 sampled instructions.
    pub sampled_ranges: Vec<InstrRange>,
}

/// Figure 2 + Table 3 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankReport {
    pub rows: Vec<RankRow>,
}

/// Runs the per-instruction study for one benchmark.
pub fn rank_benchmark(bench: &Benchmark, ctx: &Ctx) -> RankRow {
    // Per-instruction measurement costs (instrs × trials) whole-program
    // runs per input, so cap the sampled inputs' workload: the ranking
    // statistic needs diverse inputs, not heavy ones.
    let cap = match ctx.scale {
        crate::scale::Scale::Quick => 150_000,
        crate::scale::Scale::Paper => 2_000_000,
    };
    let inputs = random_inputs(
        bench,
        ctx.ranking_inputs(),
        ctx.seed ^ 0x4a4a,
        ctx.limits,
        cap,
    );

    let cfg = PerInstrConfig {
        trials_per_instr: ctx.per_instr_trials(),
        seed: ctx.seed,
        hang_factor: 8,
        threads: ctx.threads,
    };
    let measured: Vec<_> = inputs
        .iter()
        .map(|input| {
            per_instruction_sdc(&bench.module, input, ctx.limits, cfg, None)
                .expect("validated input must run")
        })
        .collect();

    // Instructions measured under every input.
    let n = bench.module.num_instrs;
    let common: Vec<usize> = (0..n)
        .filter(|&sid| measured.iter().all(|m| m.sdc_prob[sid].is_some()))
        .collect();

    // Rank lists per input, restricted to the common set.
    let lists: Vec<Vec<f64>> = measured
        .iter()
        .map(|m| common.iter().map(|&sid| m.sdc_prob[sid].unwrap()).collect())
        .collect();
    let rank_stability = mean_pairwise_spearman(&lists);

    // Sample up to 10 instructions for Figure 2: spread across the
    // common set for variety.
    let instrs = bench.module.all_instrs();
    let stride = (common.len() / 10).max(1);
    let sampled_ranges: Vec<InstrRange> = common
        .iter()
        .step_by(stride)
        .take(10)
        .map(|&sid| {
            let probs: Vec<f64> = measured.iter().map(|m| m.sdc_prob[sid].unwrap()).collect();
            InstrRange {
                sid: sid as u32,
                mnemonic: instrs[sid].1.op.mnemonic().to_string(),
                min: probs.iter().cloned().fold(f64::INFINITY, f64::min),
                max: probs.iter().cloned().fold(0.0, f64::max),
            }
        })
        .collect();

    RankRow {
        benchmark: bench.name.to_string(),
        rank_stability,
        common_instrs: common.len(),
        sampled_ranges,
    }
}

/// Runs Table 3 (all benchmarks) and Figure 2 (ranges per benchmark).
pub fn run_ranks(ctx: &Ctx) -> RankReport {
    RankReport {
        rows: all_benchmarks()
            .iter()
            .map(|b| rank_benchmark(b, ctx))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn pathfinder_ranking_reasonably_stable() {
        let mut ctx = Ctx::new(Scale::Quick, 5);
        ctx.threads = 0;
        let b = peppa_apps::pathfinder::benchmark();
        let row = rank_benchmark(&b, &ctx);
        assert!(
            row.common_instrs > 10,
            "common instructions: {}",
            row.common_instrs
        );
        // §3.2.3's claim at reduced trial counts: clearly positive
        // correlation.
        assert!(row.rank_stability > 0.3, "stability {}", row.rank_stability);
        assert!(!row.sampled_ranges.is_empty());
        for r in &row.sampled_ranges {
            assert!(r.min <= r.max);
        }
    }
}

//! Snapshot/fork campaign experiment — `repro snapshot`.
//!
//! The fork engine ([`peppa_inject::run_campaign_snapshotted`]) captures
//! K stratified snapshots of the golden prefix and starts every trial
//! from the latest snapshot preceding its injection site, so thousands
//! of trials stop re-executing the same prefix. This experiment measures
//! what that buys per benchmark, at the *larger* campaign scale the
//! engine makes affordable ([`Ctx::snapshot_campaign_trials`]):
//!
//! 1. **Bit-identity** — the snapshotted campaign's outcome counts must
//!    equal the classic runner's under the same seed and trial count.
//!    Any divergence is a determinism bug; the `repro` driver exits 1.
//! 2. **Speedup** — wall-clock ratio of the classic campaign to the
//!    snapshotted one, plus the trials/sec both achieve.
//! 3. **Amortization telemetry** — restores vs full runs, converged
//!    early exits, golden-prefix instructions skipped, and resident
//!    snapshot bytes.

use crate::scale::Ctx;
use peppa_apps::all_benchmarks;
use peppa_inject::{
    run_campaign_observed, run_campaign_snapshotted_observed, CampaignConfig, SnapshotConfig,
};
use peppa_obs::Observer;
use serde::{Deserialize, Serialize};

/// One benchmark's snapshot-campaign measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotExpRow {
    pub benchmark: String,
    /// Dynamic instructions of the golden run.
    pub golden_dynamic: u64,
    /// Campaign size both runners executed.
    pub trials: u32,
    /// Fork points requested (`--snapshots K`).
    pub snapshots_requested: u32,
    /// Fork points actually captured (≤ requested; bounded by the
    /// number of distinct sampled sites).
    pub snapshots_captured: u32,
    /// Resident bytes of all captured snapshots.
    pub snapshot_bytes: u64,
    /// Wall-clock seconds of the classic campaign.
    pub full_wall_s: f64,
    /// Wall-clock seconds of the snapshotted campaign.
    pub snapshot_wall_s: f64,
    /// `full_wall_s / snapshot_wall_s` — the measured trials/sec
    /// improvement.
    pub speedup: f64,
    pub full_trials_per_sec: f64,
    pub snapshot_trials_per_sec: f64,
    /// Trials resumed from a snapshot.
    pub restores: u64,
    /// Trials that fell back to a full run (site before the first fork
    /// point).
    pub full_runs: u64,
    /// Resumed trials that exited early at a convergence checkpoint.
    pub converged_exits: u64,
    /// Golden-prefix instructions the restores skipped re-executing.
    pub prefix_instrs_saved: u64,
    /// The determinism contract: snapshotted outcome counts equal the
    /// classic runner's.
    pub outcomes_identical: bool,
}

/// `repro snapshot` report (checked in as `results/snapshot.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotExpReport {
    pub rows: Vec<SnapshotExpRow>,
    pub seed: u64,
    pub trials: u32,
    pub snapshots: u32,
    pub smoke: bool,
}

impl SnapshotExpReport {
    /// The CI gate: the fork engine changed no measurement, on any
    /// benchmark.
    pub fn sound(&self) -> bool {
        self.rows.iter().all(|r| r.outcomes_identical)
    }
}

/// Measures one benchmark: classic vs snapshotted campaign at identical
/// seed/trials, both under the same observer.
pub fn snapshot_benchmark(
    bench: &peppa_apps::Benchmark,
    ctx: &Ctx,
    trials: u32,
    snapshots: u32,
    observer: &dyn Observer,
) -> SnapshotExpRow {
    let cfg = CampaignConfig {
        trials,
        seed: ctx.seed,
        hang_factor: 8,
        threads: ctx.threads,
        burst: 0,
        engine: ctx.engine,
    };

    let t0 = std::time::Instant::now();
    let full = run_campaign_observed(
        &bench.module,
        &bench.reference_input,
        ctx.limits,
        cfg,
        observer,
    )
    .unwrap_or_else(|e| panic!("{}: full campaign failed: {e}", bench.name));
    let full_wall_s = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let snap = run_campaign_snapshotted_observed(
        &bench.module,
        &bench.reference_input,
        ctx.limits,
        cfg,
        SnapshotConfig {
            snapshots,
            converge_exit: true,
        },
        observer,
    )
    .unwrap_or_else(|e| panic!("{}: snapshotted campaign failed: {e}", bench.name));
    let snapshot_wall_s = t1.elapsed().as_secs_f64();

    let outcomes_identical = (full.sdc, full.crash, full.hang, full.benign)
        == (
            snap.campaign.sdc,
            snap.campaign.crash,
            snap.campaign.hang,
            snap.campaign.benign,
        );

    SnapshotExpRow {
        benchmark: bench.name.to_string(),
        golden_dynamic: full.golden_dynamic,
        trials,
        snapshots_requested: snapshots,
        snapshots_captured: snap.stats.snapshots,
        snapshot_bytes: snap.stats.bytes,
        full_wall_s,
        snapshot_wall_s,
        speedup: if snapshot_wall_s > 0.0 {
            full_wall_s / snapshot_wall_s
        } else {
            0.0
        },
        full_trials_per_sec: if full_wall_s > 0.0 {
            trials as f64 / full_wall_s
        } else {
            0.0
        },
        snapshot_trials_per_sec: if snapshot_wall_s > 0.0 {
            trials as f64 / snapshot_wall_s
        } else {
            0.0
        },
        restores: snap.stats.restores,
        full_runs: snap.stats.full_runs,
        converged_exits: snap.stats.converged_exits,
        prefix_instrs_saved: snap.stats.prefix_instrs_saved,
        outcomes_identical,
    }
}

/// Runs the snapshot experiment over every bundled benchmark. `smoke`
/// shrinks the campaign to CI size.
pub fn run_snapshot_exp(ctx: &Ctx, smoke: bool, observer: &dyn Observer) -> SnapshotExpReport {
    let trials = if smoke {
        200
    } else {
        ctx.snapshot_campaign_trials()
    };
    let snapshots = ctx.campaign_snapshots();
    let rows = all_benchmarks()
        .iter()
        .map(|b| snapshot_benchmark(b, ctx, trials, snapshots, observer))
        .collect();
    SnapshotExpReport {
        rows,
        seed: ctx.seed,
        trials,
        snapshots,
        smoke,
    }
}

/// Paper-shaped text rendering.
pub fn render_snapshot_exp(r: &SnapshotExpReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "Snapshot/fork campaign speedup ({} trials/benchmark, {} fork points{})",
        r.trials,
        r.snapshots,
        if r.smoke { ", smoke" } else { "" }
    )
    .unwrap();
    writeln!(
        s,
        "{:<16} {:>12} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>12} {:>9}",
        "benchmark",
        "golden dyn",
        "full s",
        "snap s",
        "speedup",
        "restores",
        "full-run",
        "converged",
        "prefix saved",
        "identical"
    )
    .unwrap();
    for row in &r.rows {
        writeln!(
            s,
            "{:<16} {:>12} {:>8.2} {:>8.2} {:>7.2}x {:>9} {:>9} {:>9} {:>11.1}M {:>9}",
            row.benchmark,
            row.golden_dynamic,
            row.full_wall_s,
            row.snapshot_wall_s,
            row.speedup,
            row.restores,
            row.full_runs,
            row.converged_exits,
            row.prefix_instrs_saved as f64 / 1e6,
            if row.outcomes_identical { "yes" } else { "NO" }
        )
        .unwrap();
    }
    writeln!(
        s,
        "determinism: {}",
        if r.sound() {
            "OK — snapshotted outcome counts are bit-identical to the classic runner"
        } else {
            "VIOLATED"
        }
    )
    .unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use peppa_obs::NullObserver;

    #[test]
    fn snapshot_benchmark_is_identical_and_accounts_every_trial() {
        let mut ctx = Ctx::new(Scale::Quick, 2021);
        ctx.threads = 2;
        let bench = peppa_apps::pathfinder::benchmark();
        let row = snapshot_benchmark(&bench, &ctx, 60, 8, &NullObserver);
        assert!(row.outcomes_identical, "outcome counts diverged");
        assert_eq!(row.restores + row.full_runs, 60);
        assert!(row.snapshots_captured >= 1 && row.snapshots_captured <= 8);
        assert!(row.snapshot_bytes > 0);
        assert!(row.full_wall_s > 0.0 && row.snapshot_wall_s > 0.0);
    }
}

//! Figure 9: stress-testing selective instruction duplication (§6).
//!
//! For each benchmark and protection level (30%/50%/70% overhead):
//!
//! 1. measure per-instruction SDC probabilities with the **default
//!    reference input** (as all prior protection work does);
//! 2. knapsack-select the duplication set and record its *expected*
//!    coverage;
//! 3. apply the duplicate-and-check transform;
//! 4. measure the *actual* coverage by FI campaigns with the SDC-bound
//!    input found by PEPPA-X.

use crate::scale::Ctx;
use peppa_apps::{all_benchmarks, Benchmark};
use peppa_core::{PeppaConfig, PeppaX};
use peppa_protect::plan::{measure_for_planning, plan_from_measurement};
use peppa_protect::{apply_protection, measure_coverage};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One (benchmark, level) cell of Figure 9.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtectPoint {
    pub level: f64,
    pub expected_coverage: f64,
    /// Coverage measured with the reference input (sanity: should be
    /// close to expected).
    pub reference_coverage: f64,
    /// Coverage measured with the SDC-bound input (the stress test).
    pub actual_coverage: f64,
    pub protected_instrs: usize,
}

/// One benchmark's Figure 9 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtectRow {
    pub benchmark: String,
    pub sdc_bound_input: Vec<f64>,
    pub points: Vec<ProtectPoint>,
}

/// Figure 9 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtectReport {
    pub rows: Vec<ProtectRow>,
}

impl ProtectReport {
    /// Mean expected/actual coverage per level, the numbers the paper
    /// quotes (85.23/96.63/99.18% expected vs 33.52/38.02/38.28%
    /// actual).
    pub fn level_means(&self) -> Vec<(f64, f64, f64)> {
        let mut out = Vec::new();
        if self.rows.is_empty() {
            return out;
        }
        let levels: Vec<f64> = self.rows[0].points.iter().map(|p| p.level).collect();
        for (k, &level) in levels.iter().enumerate() {
            let n = self.rows.len() as f64;
            let exp = self
                .rows
                .iter()
                .map(|r| r.points[k].expected_coverage)
                .sum::<f64>()
                / n;
            let act = self
                .rows
                .iter()
                .map(|r| r.points[k].actual_coverage)
                .sum::<f64>()
                / n;
            out.push((level, exp, act));
        }
        out
    }
}

/// Runs the stress test for one benchmark, given its SDC-bound input
/// (from a prior PEPPA-X search; pass `None` to search here).
pub fn protect_benchmark(
    bench: &Benchmark,
    ctx: &Ctx,
    sdc_bound_input: Option<Vec<f64>>,
) -> ProtectRow {
    let sdc_bound_input = sdc_bound_input.unwrap_or_else(|| {
        let cfg = PeppaConfig {
            seed: ctx.seed,
            population: ctx.population(),
            distribution_trials: ctx.distribution_trials(),
            final_fi_trials: ctx.campaign_trials(),
            limits: ctx.limits,
            threads: ctx.threads,
            ..Default::default()
        };
        let px = PeppaX::prepare(bench, cfg).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let report = px.search(&[ctx.saturation_checkpoint()]);
        report.sdc_bound().input.clone()
    });

    // Step 1: per-instruction probabilities on the reference input.
    let measured = measure_for_planning(
        &bench.module,
        &bench.reference_input,
        ctx.limits,
        ctx.per_instr_trials(),
        ctx.seed ^ 0x9999,
        ctx.threads,
    )
    .expect("reference input must run");

    let mut points = Vec::new();
    for level in ctx.protection_levels() {
        // Step 2: knapsack.
        let plan = plan_from_measurement(
            &bench.module,
            &bench.reference_input,
            ctx.limits,
            &measured,
            level,
        );

        // Step 3: transform.
        let selected: HashSet<_> = plan.selected.iter().copied().collect();
        let protected = apply_protection(&bench.module, &selected);

        // Step 4: coverage with reference and SDC-bound inputs.
        let ref_cov = measure_coverage(
            &bench.module,
            &protected.module,
            &bench.reference_input,
            ctx.limits,
            ctx.campaign_trials(),
            ctx.seed ^ 0x1111,
            ctx.threads,
        )
        .expect("reference coverage");
        let stress_cov = measure_coverage(
            &bench.module,
            &protected.module,
            &sdc_bound_input,
            ctx.limits,
            ctx.campaign_trials(),
            ctx.seed ^ 0x2222,
            ctx.threads,
        )
        .expect("stress coverage");

        points.push(ProtectPoint {
            level,
            expected_coverage: plan.expected_coverage,
            reference_coverage: ref_cov.coverage,
            actual_coverage: stress_cov.coverage,
            protected_instrs: plan.selected.len(),
        });
    }

    ProtectRow {
        benchmark: bench.name.to_string(),
        sdc_bound_input,
        points,
    }
}

/// Runs Figure 9 for every benchmark. `bound_inputs` lets the caller
/// reuse SDC-bound inputs from a prior Figure 5 run (keyed by benchmark
/// name).
pub fn run_protect(ctx: &Ctx, bound_inputs: &[(String, Vec<f64>)]) -> ProtectReport {
    let rows = all_benchmarks()
        .iter()
        .map(|b| {
            let pre = bound_inputs
                .iter()
                .find(|(name, _)| name == b.name)
                .map(|(_, input)| input.clone());
            protect_benchmark(b, ctx, pre)
        })
        .collect();
    ProtectReport { rows }
}

/// Ablation (the paper's deferred future work): classic reference-input
/// planning vs input-aware planning over {reference, random, SDC-bound}
/// inputs, both stress-tested with the SDC-bound input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    pub benchmark: String,
    pub level: f64,
    pub classic_stress_coverage: f64,
    pub aware_stress_coverage: f64,
    pub classic_reference_coverage: f64,
    pub aware_reference_coverage: f64,
}

/// Ablation report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationReport {
    pub rows: Vec<AblationRow>,
}

/// Runs the input-aware-planning ablation for one benchmark.
pub fn ablation_benchmark(
    bench: &Benchmark,
    ctx: &Ctx,
    sdc_bound_input: Vec<f64>,
    level: f64,
) -> AblationRow {
    use peppa_protect::plan_multi_input;

    let ref_meas = measure_for_planning(
        &bench.module,
        &bench.reference_input,
        ctx.limits,
        ctx.per_instr_trials(),
        ctx.seed ^ 0xab1,
        ctx.threads,
    )
    .expect("reference measurement");
    let bound_meas = measure_for_planning(
        &bench.module,
        &sdc_bound_input,
        ctx.limits,
        ctx.per_instr_trials(),
        ctx.seed ^ 0xab2,
        ctx.threads,
    )
    .expect("bound-input measurement");

    let classic = plan_from_measurement(
        &bench.module,
        &bench.reference_input,
        ctx.limits,
        &ref_meas,
        level,
    );
    let aware = plan_multi_input(
        &bench.module,
        &[bench.reference_input.clone(), sdc_bound_input.clone()],
        ctx.limits,
        &[ref_meas, bound_meas],
        level,
    );

    let coverage = |plan: &peppa_protect::ProtectionPlan, input: &[f64], seed: u64| -> f64 {
        let selected: HashSet<_> = plan.selected.iter().copied().collect();
        let protected = apply_protection(&bench.module, &selected);
        measure_coverage(
            &bench.module,
            &protected.module,
            input,
            ctx.limits,
            ctx.campaign_trials(),
            seed,
            ctx.threads,
        )
        .expect("coverage measurement")
        .coverage
    };

    AblationRow {
        benchmark: bench.name.to_string(),
        level,
        classic_stress_coverage: coverage(&classic, &sdc_bound_input, ctx.seed ^ 1),
        aware_stress_coverage: coverage(&aware, &sdc_bound_input, ctx.seed ^ 2),
        classic_reference_coverage: coverage(&classic, &bench.reference_input, ctx.seed ^ 3),
        aware_reference_coverage: coverage(&aware, &bench.reference_input, ctx.seed ^ 4),
    }
}

/// Runs the ablation over all benchmarks at the 50% level, reusing
/// SDC-bound inputs where provided.
pub fn run_ablation(ctx: &Ctx, bound_inputs: &[(String, Vec<f64>)]) -> AblationReport {
    let rows = all_benchmarks()
        .iter()
        .map(|b| {
            let bound = bound_inputs
                .iter()
                .find(|(name, _)| name == b.name)
                .map(|(_, input)| input.clone())
                .unwrap_or_else(|| {
                    let cfg = PeppaConfig {
                        seed: ctx.seed,
                        population: ctx.population(),
                        distribution_trials: ctx.distribution_trials(),
                        final_fi_trials: ctx.campaign_trials(),
                        limits: ctx.limits,
                        threads: ctx.threads,
                        ..Default::default()
                    };
                    let px = PeppaX::prepare(b, cfg).expect("prepare");
                    px.search(&[ctx.saturation_checkpoint()])
                        .sdc_bound()
                        .input
                        .clone()
                });
            ablation_benchmark(b, ctx, bound, 0.5)
        })
        .collect();
    AblationReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn stress_test_shapes_on_pathfinder() {
        let mut ctx = Ctx::new(Scale::Quick, 4);
        ctx.threads = 0;
        let b = peppa_apps::pathfinder::benchmark();
        // Hand the test a stressing input (wide spread exposes more
        // SDCs) so it skips the expensive search.
        let row = protect_benchmark(&b, &ctx, Some(vec![40.0, 56.0, 1234.0, 80.0]));
        assert_eq!(row.points.len(), 3);
        for p in &row.points {
            assert!((0.0..=1.0).contains(&p.expected_coverage), "{p:?}");
            assert!((0.0..=1.0).contains(&p.actual_coverage), "{p:?}");
            assert!(p.protected_instrs > 0);
        }
        // Coverage should not decrease with a bigger budget.
        assert!(row.points[2].expected_coverage >= row.points[0].expected_coverage - 1e-9);
    }
}

//! Hybrid static/dynamic campaign validation — `repro hybrid`.
//!
//! The interprocedural fault-reachability analysis
//! ([`peppa_analysis::FaultReach`]) and the input-specific
//! deviation-amplitude analysis
//! ([`peppa_analysis::DeviationAnalysis`]) together classify each
//! `(sid, sampled bit)` fault cell as provably masked or possibly
//! propagating: the campaign table is the *union* of the two masked-cell
//! sets, computed for the exact input the campaign runs on. A
//! `--static-prune` campaign skips the provably-masked cells without
//! executing them. This experiment checks that claim dynamically, per
//! benchmark:
//!
//! 1. **Exactness** — because the pruned campaign samples each trial's
//!    fault from the same RNG stream *before* deciding to skip, a sound
//!    table must leave every outcome count (SDC/crash/hang/benign)
//!    exactly equal to the full campaign's. We run both and compare.
//! 2. **Soundness spot-check** — a deterministic sample of masked cells
//!    is re-validated by *actually injecting* each one
//!    (`InjectionTarget::StaticInstance` at a random executed instance)
//!    and asserting the run classifies as Benign against the golden run
//!    (reachability-masked cells are bit-identical; deviation-masked
//!    cells stay inside the outcome classifier's tolerance). Any SDC
//!    (or crash/hang) among these falsifies the analysis.
//! 3. **Speedup** — wall-clock of the pruned campaign vs the full one.
//!    The skip ratio bounds the achievable speedup; both are reported.
//!
//! `hpccg` is the known degenerate case for the *reachability* half:
//! every value feeds a float accumulation chain, an address, or a
//! branch condition, so the static analysis honestly proves zero masked
//! cells (the paper's "most SDC-prone benchmark" narrative). Only the
//! input-specific deviation channel contributes masked cells there, so
//! its skip ratio stays near zero and the test below exempts it from
//! the nonzero-static-region assertions.

use crate::scale::{Ctx, Scale};
use peppa_analysis::deviation::combined_skip_cells;
use peppa_analysis::FaultReach;
use peppa_apps::{all_benchmarks, random_inputs, Benchmark};
use peppa_inject::{
    classify, run_campaign, run_campaign_pruned, CampaignConfig, FaultOutcome, StaticPrune,
};
use peppa_stats::Pcg64;
use peppa_vm::{ExecLimits, Injection, InjectionTarget, Vm};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One validated masked cell: the analysis says flipping `bit` of the
/// value produced by `sid` can never change observable behavior.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidatedCell {
    pub sid: u32,
    pub bit: u32,
    /// The executed instance the fault was injected at.
    pub instance: u64,
    /// FI outcome name; `benign` confirms the static claim.
    pub outcome: String,
}

/// One benchmark's hybrid-validation row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridRow {
    pub benchmark: String,
    /// Provably-masked cells of the `value sids × 64 bits` fault space.
    pub masked_cells: u64,
    pub total_cells: u64,
    /// Trials the pruned campaign skipped / ran in total.
    pub skipped: u64,
    pub trials: u32,
    pub skip_ratio: f64,
    /// Full-campaign outcome counts.
    pub full_sdc: u32,
    pub full_crash: u32,
    pub full_hang: u32,
    pub full_benign: u32,
    /// Whether the pruned campaign's counts equal the full campaign's
    /// exactly (the soundness + shared-RNG-stream guarantee).
    pub counts_match: bool,
    /// Pruned-campaign SDC probability inside the full campaign's 95%
    /// CI (implied by `counts_match`; reported for the acceptance
    /// criterion).
    pub within_ci: bool,
    pub full_wall_ms: f64,
    pub pruned_wall_ms: f64,
    /// Full / pruned campaign wall time.
    pub speedup: f64,
    /// FI spot-check of masked cells: all outcomes must be `benign`.
    pub validated: Vec<ValidatedCell>,
    pub validation_sdc: usize,
    pub validation_nonbenign: usize,
}

/// `repro hybrid` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridReport {
    pub rows: Vec<HybridRow>,
    pub seed: u64,
    pub trials: u32,
    pub smoke: bool,
}

impl HybridReport {
    /// The CI gate: static pruning never reclassified an FI-observed
    /// SDC site as masked, and pruned counts match full counts exactly.
    pub fn sound(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.validation_sdc == 0 && r.counts_match && r.within_ci)
    }
}

/// Validates one benchmark's static prune table against FI.
pub fn hybrid_benchmark(bench: &Benchmark, ctx: &Ctx, trials: u32, validate: usize) -> HybridRow {
    let fr = FaultReach::analyze(&bench.module);
    let burst = 0u8;

    let cap = match ctx.scale {
        Scale::Quick => 300_000,
        Scale::Paper => 2_000_000,
    };
    let input = random_inputs(bench, 1, ctx.seed ^ 0x4b1d, ctx.limits, cap)
        .pop()
        .expect("one valid input");

    // The deviation half of the table is input-specific: it must be
    // computed from the very input the campaigns below inject into.
    let cells = combined_skip_cells(&bench.module, &fr, &input, ctx.limits, burst);
    let masked_cells: u64 = fr
        .widths
        .iter()
        .zip(&cells)
        .filter(|(&w, _)| w != 0)
        .map(|(_, &c)| c.count_ones() as u64)
        .sum();
    let total_cells = 64 * fr.widths.iter().filter(|&&w| w != 0).count() as u64;
    let prune = StaticPrune {
        cells: cells.clone(),
        burst,
    };

    let cfg = CampaignConfig {
        trials,
        seed: ctx.seed,
        threads: ctx.threads,
        ..Default::default()
    };
    let t0 = Instant::now();
    let full = run_campaign(&bench.module, &input, ctx.limits, cfg).expect("full campaign");
    let full_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let pruned = run_campaign_pruned(&bench.module, &input, ctx.limits, cfg, &prune)
        .expect("pruned campaign");
    let pruned_wall_ms = t1.elapsed().as_secs_f64() * 1e3;

    let counts_match = (full.sdc, full.crash, full.hang, full.benign)
        == (
            pruned.campaign.sdc,
            pruned.campaign.crash,
            pruned.campaign.hang,
            pruned.campaign.benign,
        );
    let within_ci =
        (pruned.campaign.sdc_prob() - full.sdc_prob()).abs() <= full.sdc_ci.half_width + 1e-12;

    let validated = validate_masked_cells(bench, &cells, &input, ctx, burst, validate);
    let validation_sdc = validated.iter().filter(|c| c.outcome == "sdc").count();
    let validation_nonbenign = validated.iter().filter(|c| c.outcome != "benign").count();

    HybridRow {
        benchmark: bench.name.to_string(),
        masked_cells,
        total_cells,
        skipped: pruned.skipped,
        trials,
        skip_ratio: pruned.skip_ratio(),
        full_sdc: full.sdc,
        full_crash: full.crash,
        full_hang: full.hang,
        full_benign: full.benign,
        counts_match,
        within_ci,
        full_wall_ms,
        pruned_wall_ms,
        speedup: if pruned_wall_ms > 0.0 {
            full_wall_ms / pruned_wall_ms
        } else {
            1.0
        },
        validated,
        validation_sdc,
        validation_nonbenign,
    }
}

/// Injects a deterministic sample of provably-masked cells and
/// classifies each run against the golden run. Sampled instances are
/// drawn uniformly from the cell's executed instances, so the check
/// exercises different loop iterations, not just the first.
fn validate_masked_cells(
    bench: &Benchmark,
    cells: &[u64],
    input: &[f64],
    ctx: &Ctx,
    burst: u8,
    validate: usize,
) -> Vec<ValidatedCell> {
    let vm = Vm::new(&bench.module, ctx.limits);
    let golden = vm.run_numeric(input, None);
    assert!(golden.status.is_ok(), "golden run must pass");
    let faulty_limits = ExecLimits {
        max_dynamic: golden.profile.dynamic * 8 + 10_000,
        ..ctx.limits
    };

    // All masked cells whose sid actually executed under this input —
    // drawn from the full union table, so the deviation-masked cells
    // face the same injector as the reachability-masked ones.
    let mut pool: Vec<(u32, u32)> = Vec::new();
    for (sid, &mask) in cells.iter().enumerate() {
        if golden.profile.exec_counts[sid] == 0 {
            continue;
        }
        for bit in 0..64 {
            if mask >> bit & 1 != 0 {
                pool.push((sid as u32, bit));
            }
        }
    }

    let mut rng = Pcg64::new(ctx.seed ^ 0xce11);
    let mut out = Vec::new();
    let n = pool.len().min(validate);
    // Evenly-strided sample keeps coverage spread over sids even when
    // the pool is much larger than the sample.
    for k in 0..n {
        let (sid, bit) = pool[k * pool.len() / n.max(1)];
        let execs = golden.profile.exec_counts[sid as usize];
        let instance = rng.gen_range_u64(execs);
        let inj = Injection {
            target: InjectionTarget::StaticInstance {
                sid: peppa_ir::InstrId(sid),
                instance,
            },
            bit,
            burst,
        };
        let faulty = Vm::new(&bench.module, faulty_limits).run_numeric(input, Some(inj));
        let outcome = match classify(&golden, &faulty) {
            FaultOutcome::Sdc => "sdc",
            FaultOutcome::Crash => "crash",
            FaultOutcome::Hang => "hang",
            FaultOutcome::Benign => "benign",
        };
        out.push(ValidatedCell {
            sid,
            bit,
            instance,
            outcome: outcome.to_string(),
        });
    }
    out
}

/// Runs the hybrid validation over every bundled benchmark. `smoke`
/// shrinks trial and validation-sample counts to CI size.
pub fn run_hybrid(ctx: &Ctx, smoke: bool) -> HybridReport {
    let trials = if smoke { 120 } else { ctx.campaign_trials() };
    let validate = if smoke { 8 } else { 24 };
    let rows = all_benchmarks()
        .iter()
        .map(|b| hybrid_benchmark(b, ctx, trials, validate))
        .collect();
    HybridReport {
        rows,
        seed: ctx.seed,
        trials,
        smoke,
    }
}

/// Paper-shaped text rendering.
pub fn render_hybrid(r: &HybridReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "Hybrid static/dynamic campaign validation ({} trials{})",
        r.trials,
        if r.smoke { ", smoke" } else { "" }
    )
    .unwrap();
    writeln!(
        s,
        "{:<16} {:>14} {:>8} {:>13} {:>9} {:>9} {:>8} {:>12}",
        "benchmark",
        "masked cells",
        "skip %",
        "counts",
        "full ms",
        "pruned",
        "speedup",
        "validated"
    )
    .unwrap();
    for row in &r.rows {
        writeln!(
            s,
            "{:<16} {:>7}/{:<6} {:>7.2}% {:>13} {:>9.0} {:>9.0} {:>7.2}x {:>7} ({} sdc)",
            row.benchmark,
            row.masked_cells,
            row.total_cells,
            row.skip_ratio * 100.0,
            if row.counts_match {
                "exact"
            } else {
                "MISMATCH"
            },
            row.full_wall_ms,
            row.pruned_wall_ms,
            row.speedup,
            row.validated.len(),
            row.validation_sdc,
        )
        .unwrap();
    }
    writeln!(
        s,
        "soundness: {}",
        if r.sound() {
            "OK — no masked cell produced an SDC; pruned counts exact"
        } else {
            "VIOLATED"
        }
    )
    .unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_smoke_is_sound_on_all_benchmarks() {
        let mut ctx = Ctx::new(Scale::Quick, 2021);
        ctx.threads = 2;
        let r = run_hybrid(&ctx, true);
        assert_eq!(r.rows.len(), 7);
        for row in &r.rows {
            assert!(
                row.counts_match,
                "{}: pruned counts diverged",
                row.benchmark
            );
            assert!(row.within_ci, "{}: outside CI", row.benchmark);
            assert_eq!(
                row.validation_nonbenign, 0,
                "{}: masked cell not benign: {:?}",
                row.benchmark, row.validated
            );
            // hpccg is the documented all-cells-live case; every other
            // benchmark must prove a nonzero masked region.
            if !row.benchmark.eq_ignore_ascii_case("hpccg") {
                assert!(row.masked_cells > 0, "{}: no masked cells", row.benchmark);
                assert!(
                    !row.validated.is_empty(),
                    "{}: nothing validated",
                    row.benchmark
                );
            }
        }
        assert!(r.sound());
    }
}

//! Experiment scaling knobs.

use peppa_vm::{EngineKind, ExecLimits};

/// Experiment scale: `Quick` for CI-sized runs, `Paper` for the paper's
/// trial counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Paper,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Shared experiment context.
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    pub scale: Scale,
    pub seed: u64,
    pub threads: usize,
    pub limits: ExecLimits,
    /// Execution backend campaigns run trials on (`--engine`). Outcome-
    /// invariant: both engines produce bit-identical trial results, so
    /// this is purely a wall-clock knob.
    pub engine: EngineKind,
}

impl Ctx {
    pub fn new(scale: Scale, seed: u64) -> Ctx {
        Ctx {
            scale,
            seed,
            threads: 0,
            limits: ExecLimits::default(),
            engine: EngineKind::Interp,
        }
    }

    /// Random inputs per benchmark for the initial FI study (§3: 30).
    pub fn study_inputs(&self) -> usize {
        match self.scale {
            Scale::Quick => 8,
            Scale::Paper => 30,
        }
    }

    /// Trials per program-level campaign — one notch above the paper's
    /// 1,000 (§3.1.4) now that the compiled engine and snapshotted
    /// execution make the extra trials cheap. `--smoke` paths hardcode
    /// their own (smaller) counts, so CI wall time is unaffected.
    pub fn campaign_trials(&self) -> u32 {
        match self.scale {
            Scale::Quick => 500,
            Scale::Paper => 2000,
        }
    }

    /// Snapshots per snapshotted campaign (the `--snapshots K` knob the
    /// baseline and snapshot experiments measure at).
    pub fn campaign_snapshots(&self) -> u32 {
        match self.scale {
            Scale::Quick => 64,
            Scale::Paper => 64,
        }
    }

    /// Trials per *snapshotted* program-level campaign. The fork engine
    /// amortizes the golden prefix, so campaigns several times the
    /// classic size fit the same wall budget — this is the scale the
    /// snapshot experiment and the baseline run at (raised one notch
    /// alongside [`Ctx::campaign_trials`]).
    pub fn snapshot_campaign_trials(&self) -> u32 {
        match self.scale {
            Scale::Quick => 2000,
            Scale::Paper => 10000,
        }
    }

    /// Trials per instruction for per-instruction measurements (§3.1.4:
    /// 100).
    pub fn per_instr_trials(&self) -> u32 {
        match self.scale {
            Scale::Quick => 30,
            Scale::Paper => 100,
        }
    }

    /// Trials per representative in the distribution analysis (§4.2.3:
    /// 30).
    pub fn distribution_trials(&self) -> u32 {
        match self.scale {
            Scale::Quick => 15,
            Scale::Paper => 30,
        }
    }

    /// Generation checkpoints for the search comparison (Figure 5: 50,
    /// 100, 200, 500, 1,000).
    pub fn generation_checkpoints(&self) -> Vec<u64> {
        match self.scale {
            Scale::Quick => vec![10, 25, 50, 100],
            Scale::Paper => vec![50, 100, 200, 500, 1000],
        }
    }

    /// The "saturation" checkpoint used for Figure 7 and Figure 9 (200
    /// generations in the paper).
    pub fn saturation_checkpoint(&self) -> u64 {
        match self.scale {
            Scale::Quick => 50,
            Scale::Paper => 200,
        }
    }

    /// GA population size.
    pub fn population(&self) -> usize {
        match self.scale {
            Scale::Quick => 12,
            Scale::Paper => 20,
        }
    }

    /// Inputs per benchmark for the ranking-stability study (Table 3).
    pub fn ranking_inputs(&self) -> usize {
        match self.scale {
            Scale::Quick => 4,
            Scale::Paper => 8,
        }
    }

    /// Heat-map grid resolution per axis (Figure 6).
    pub fn heatmap_resolution(&self) -> usize {
        match self.scale {
            Scale::Quick => 10,
            Scale::Paper => 20,
        }
    }

    /// Trials per heat-map cell.
    pub fn heatmap_trials(&self) -> u32 {
        match self.scale {
            Scale::Quick => 120,
            Scale::Paper => 400,
        }
    }

    /// Protection levels for Figure 9.
    pub fn protection_levels(&self) -> Vec<f64> {
        vec![0.3, 0.5, 0.7]
    }
}

//! FI-space pruning experiments: Table 4 (pruning ratios) and Table 5
//! (time for the SDC-sensitivity-distribution analysis with and without
//! the heuristics).

use crate::scale::Ctx;
use peppa_analysis::{prune_fi_space, prune_fi_space_refined};
use peppa_apps::all_benchmarks;
use peppa_core::{derive_sdc_scores, fuzz_small_input, SmallInputConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Table 4's row, extended with the known-bits-refined grouping (same
/// baseline subgroups, split where members' known-bits signatures
/// differ — see [`prune_fi_space_refined`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PruningRow {
    pub benchmark: String,
    pub injectable: usize,
    pub groups: usize,
    pub pruning_ratio: f64,
    /// Subgroups after the known-bits refinement.
    pub refined_groups: usize,
    /// Pruning ratio of the refined grouping (≤ the baseline ratio).
    pub refined_ratio: f64,
}

/// Table 4 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PruningReport {
    pub rows: Vec<PruningRow>,
}

impl PruningReport {
    /// The paper's Table 4 average (49.32%).
    pub fn average_ratio(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.pruning_ratio).sum::<f64>() / self.rows.len() as f64
    }
}

/// Runs Table 4 (static, fast).
pub fn run_pruning_ratios() -> PruningReport {
    let rows = all_benchmarks()
        .iter()
        .map(|b| {
            let p = prune_fi_space(&b.module);
            let refined = prune_fi_space_refined(&b.module);
            PruningRow {
                benchmark: b.name.to_string(),
                injectable: p.injectable,
                groups: p.groups.len(),
                pruning_ratio: p.pruning_ratio(),
                refined_groups: refined.groups.len(),
                refined_ratio: refined.pruning_ratio(),
            }
        })
        .collect();
    PruningReport { rows }
}

/// Table 5's row: distribution-analysis cost with and without the
/// heuristics (small input + pruning + reduced trials vs reference input
/// + exhaustive + per-instruction trials).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisTimeRow {
    pub benchmark: String,
    pub with_heuristics_secs: f64,
    pub without_heuristics_secs: f64,
    pub with_cost_dynamic: u64,
    pub without_cost_dynamic: u64,
    pub speedup: f64,
}

/// Table 5 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisTimeReport {
    pub rows: Vec<AnalysisTimeRow>,
}

impl AnalysisTimeReport {
    pub fn mean_speedup(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.speedup).sum::<f64>() / self.rows.len() as f64
    }
}

/// Runs Table 5. The "without heuristics" arm uses the default reference
/// input, no pruning, and the per-instruction trial count — exactly the
/// strawman of challenge C1.
pub fn run_analysis_time(ctx: &Ctx) -> AnalysisTimeReport {
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        let small = fuzz_small_input(&b, ctx.limits, SmallInputConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));

        let t0 = Instant::now();
        let with = derive_sdc_scores(
            &b,
            &small.input,
            ctx.limits,
            ctx.distribution_trials(),
            ctx.seed,
            true,
            ctx.threads,
        )
        .expect("with-heuristics analysis");
        let with_secs = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let without = derive_sdc_scores(
            &b,
            &b.reference_input,
            ctx.limits,
            ctx.per_instr_trials(),
            ctx.seed,
            false,
            ctx.threads,
        )
        .expect("without-heuristics analysis");
        let without_secs = t1.elapsed().as_secs_f64();

        rows.push(AnalysisTimeRow {
            benchmark: b.name.to_string(),
            with_heuristics_secs: with_secs,
            without_heuristics_secs: without_secs,
            with_cost_dynamic: with.cost_dynamic + small.cost_dynamic,
            without_cost_dynamic: without.cost_dynamic,
            speedup: if with_secs > 0.0 {
                without_secs / with_secs
            } else {
                f64::INFINITY
            },
        });
    }
    AnalysisTimeReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_ratios_in_paper_ballpark() {
        let r = run_pruning_ratios();
        assert_eq!(r.rows.len(), 7);
        for row in &r.rows {
            assert!(
                row.pruning_ratio > 0.05 && row.pruning_ratio < 0.95,
                "{}: ratio {}",
                row.benchmark,
                row.pruning_ratio
            );
        }
        // Paper average: 49.32%. Accept a generous band around it.
        let avg = r.average_ratio();
        assert!(avg > 0.15 && avg < 0.85, "average ratio {avg}");
    }

    #[test]
    fn refined_ratio_never_exceeds_baseline() {
        let r = run_pruning_ratios();
        for row in &r.rows {
            assert!(
                row.refined_ratio <= row.pruning_ratio + 1e-12,
                "{}: refined {} > baseline {}",
                row.benchmark,
                row.refined_ratio,
                row.pruning_ratio
            );
            assert!(row.refined_groups >= row.groups);
            // Refinement must still prune something.
            assert!(
                row.refined_ratio > 0.0,
                "{}: refined ratio 0",
                row.benchmark
            );
        }
    }
}

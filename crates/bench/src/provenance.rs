//! Dynamic/static propagation cross-check — `repro provenance`.
//!
//! The shadow-taint engine ([`peppa_vm::TaintHook`]) and the backward
//! fault-reachability analysis ([`peppa_analysis::FaultReach`]) are two
//! over-approximations of the same ground truth, built to satisfy a
//! *containment* contract: the forward taint rules are the adjoint of
//! the backward matter-mask rules, so any fault whose taint dynamically
//! reaches an observable sink must sit in a statically `MayPropagate`
//! cell. This experiment checks that contract per benchmark with a
//! traced FI campaign:
//!
//! 1. **Containment** — for every seeded trial whose taint reached a
//!    sink, the `(sid, bit)` cell must not be `ProvablyMasked`. A
//!    violation means a soundness bug in one of the two engines; the
//!    `repro` driver exits 1.
//! 2. **Static-precision headroom** — of the `MayPropagate` cells the
//!    campaign sampled, the fraction whose taint *never* reached a sink
//!    in any trial: dynamically-dead cells the static analysis failed to
//!    prove masked, i.e. the refinement room left in `reach.rs`.
//! 3. **Propagation telemetry** — propagated / extinguished / dormant
//!    trial counts and the first-sink distribution, the aggregate view
//!    of the per-trial `trial_provenance` journal records.

use crate::scale::Ctx;
use peppa_analysis::FaultReach;
use peppa_apps::all_benchmarks;
use peppa_inject::{run_campaign_traced_observed, CampaignConfig};
use peppa_ir::InstrId;
use peppa_obs::Observer;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One containment violation: a dynamically-propagating fault in a
/// statically provably-masked cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Violation {
    pub trial: u32,
    pub sid: u32,
    pub bit: u32,
    /// Sink kind the taint reached.
    pub sink: String,
}

/// One benchmark's provenance cross-check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProvenanceRow {
    pub benchmark: String,
    pub trials: u32,
    /// Trials whose fault activated (taint was seeded).
    pub seeded: u32,
    /// Seeded trials whose taint reached an observable sink.
    pub propagated: u32,
    /// Seeded trials whose taint died before any sink.
    pub extinguished: u32,
    /// Seeded trials ending with live taint but no sink hit — dormant
    /// corruption that never became observable within the run.
    pub dormant: u32,
    /// Seeded trials sampled in statically `ProvablyMasked` cells.
    pub masked_sampled: u32,
    /// Containment violations (must be empty for a sound pair of
    /// engines).
    pub violations: Vec<Violation>,
    /// Distinct `MayPropagate` `(sid, bit)` cells the campaign seeded.
    pub may_cells_sampled: u64,
    /// Of those, cells where no trial's taint ever reached a sink.
    pub may_cells_never_propagated: u64,
    /// `may_cells_never_propagated / may_cells_sampled`: the fraction of
    /// sampled may-propagate cells that are dynamically dead — static
    /// precision left on the table.
    pub headroom: f64,
    /// First-sink distribution over propagated trials, sorted by kind.
    pub sink_counts: Vec<(String, u32)>,
    /// Mean propagation hop count (tainted defs) over seeded trials.
    pub mean_hops: f64,
}

/// `repro provenance` report (checked in as `results/provenance.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProvenanceReport {
    pub rows: Vec<ProvenanceRow>,
    pub seed: u64,
    pub trials: u32,
    pub smoke: bool,
}

impl ProvenanceReport {
    /// The CI gate: no dynamically-propagating fault was statically
    /// classified as provably masked, on any benchmark.
    pub fn sound(&self) -> bool {
        self.rows.iter().all(|r| r.violations.is_empty())
    }
}

/// Cross-checks one benchmark's traced campaign against its static
/// reach analysis.
pub fn provenance_benchmark(
    bench: &peppa_apps::Benchmark,
    ctx: &Ctx,
    trials: u32,
    observer: &dyn Observer,
) -> ProvenanceRow {
    let fr = FaultReach::analyze(&bench.module);
    let cfg = CampaignConfig {
        trials,
        seed: ctx.seed,
        hang_factor: 8,
        threads: ctx.threads,
        burst: 0,
        engine: ctx.engine,
    };
    let traced = run_campaign_traced_observed(
        &bench.module,
        &bench.reference_input,
        ctx.limits,
        cfg,
        observer,
    )
    .unwrap_or_else(|e| panic!("{}: traced campaign failed: {e}", bench.name));

    let mut seeded = 0u32;
    let mut propagated = 0u32;
    let mut extinguished = 0u32;
    let mut dormant = 0u32;
    let mut masked_sampled = 0u32;
    let mut violations = Vec::new();
    let mut sink_counts: BTreeMap<&'static str, u32> = BTreeMap::new();
    // Per sampled (sid, bit) cell: did any trial's taint reach a sink?
    let mut cell_propagated: BTreeMap<(u32, u32), bool> = BTreeMap::new();
    let mut hops_sum = 0u64;

    for t in &traced.trials {
        let r = &t.report;
        if !r.seeded {
            continue;
        }
        seeded += 1;
        hops_sum += r.tainted_defs;
        let did_propagate = r.propagated();
        if did_propagate {
            propagated += 1;
            let kind = r.first_sink.expect("propagated has a sink").kind;
            *sink_counts.entry(kind.as_str()).or_insert(0) += 1;
        } else if r.extinguished() {
            extinguished += 1;
        } else {
            dormant += 1;
        }

        // The containment check runs on the *seeded* cell — the static
        // instruction actually corrupted and the sampled bit, the same
        // `(sid, bit)` coordinates `StaticPrune` tables index by.
        let statically_masked = fr.is_masked_fault(InstrId(r.seed_sid), t.bit, cfg.burst);
        if statically_masked {
            masked_sampled += 1;
            if did_propagate {
                violations.push(Violation {
                    trial: t.trial,
                    sid: r.seed_sid,
                    bit: t.bit,
                    sink: r
                        .first_sink
                        .map(|s| s.kind.as_str().to_string())
                        .unwrap_or_default(),
                });
            }
        } else {
            let cell = cell_propagated.entry((r.seed_sid, t.bit)).or_insert(false);
            *cell |= did_propagate;
        }
    }

    let may_cells_sampled = cell_propagated.len() as u64;
    let may_cells_never_propagated = cell_propagated.values().filter(|p| !**p).count() as u64;

    ProvenanceRow {
        benchmark: bench.name.to_string(),
        trials,
        seeded,
        propagated,
        extinguished,
        dormant,
        masked_sampled,
        violations,
        may_cells_sampled,
        may_cells_never_propagated,
        headroom: if may_cells_sampled > 0 {
            may_cells_never_propagated as f64 / may_cells_sampled as f64
        } else {
            0.0
        },
        sink_counts: sink_counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        mean_hops: if seeded > 0 {
            hops_sum as f64 / seeded as f64
        } else {
            0.0
        },
    }
}

/// Runs the provenance cross-check over every bundled benchmark.
/// `smoke` shrinks the campaign to CI size.
pub fn run_provenance(ctx: &Ctx, smoke: bool, observer: &dyn Observer) -> ProvenanceReport {
    let trials = if smoke { 120 } else { ctx.campaign_trials() };
    let rows = all_benchmarks()
        .iter()
        .map(|b| provenance_benchmark(b, ctx, trials, observer))
        .collect();
    ProvenanceReport {
        rows,
        seed: ctx.seed,
        trials,
        smoke,
    }
}

/// Paper-shaped text rendering.
pub fn render_provenance(r: &ProvenanceReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "Fault-provenance cross-check ({} trials/benchmark{})",
        r.trials,
        if r.smoke { ", smoke" } else { "" }
    )
    .unwrap();
    writeln!(
        s,
        "{:<16} {:>7} {:>10} {:>8} {:>8} {:>10} {:>9} {:>10} {:>9}",
        "benchmark",
        "seeded",
        "propagated",
        "extinct",
        "dormant",
        "violations",
        "may cells",
        "dyn-dead",
        "headroom"
    )
    .unwrap();
    for row in &r.rows {
        writeln!(
            s,
            "{:<16} {:>7} {:>10} {:>8} {:>8} {:>10} {:>9} {:>10} {:>8.1}%",
            row.benchmark,
            row.seeded,
            row.propagated,
            row.extinguished,
            row.dormant,
            row.violations.len(),
            row.may_cells_sampled,
            row.may_cells_never_propagated,
            row.headroom * 100.0,
        )
        .unwrap();
    }
    for row in &r.rows {
        let sinks: Vec<String> = row
            .sink_counts
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect();
        writeln!(
            s,
            "  {:<14} sinks: {}  mean hops {:.1}",
            row.benchmark,
            if sinks.is_empty() {
                "-".to_string()
            } else {
                sinks.join(", ")
            },
            row.mean_hops
        )
        .unwrap();
    }
    writeln!(
        s,
        "containment: {}",
        if r.sound() {
            "OK — every dynamically-propagating fault is statically MayPropagate"
        } else {
            "VIOLATED"
        }
    )
    .unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use peppa_obs::NullObserver;

    #[test]
    fn provenance_smoke_has_zero_violations_on_all_benchmarks() {
        let mut ctx = Ctx::new(Scale::Quick, 2021);
        ctx.threads = 2;
        let r = run_provenance(&ctx, true, &NullObserver);
        assert_eq!(r.rows.len(), 7);
        for row in &r.rows {
            assert!(
                row.violations.is_empty(),
                "{}: containment violated: {:?}",
                row.benchmark,
                row.violations
            );
            assert!(row.seeded > 0, "{}: no seeded trials", row.benchmark);
            assert!(
                row.propagated + row.extinguished + row.dormant == row.seeded,
                "{}: trial accounting leaks",
                row.benchmark
            );
            // Every benchmark outputs something, so some faults must
            // visibly propagate.
            assert!(row.propagated > 0, "{}: nothing propagated", row.benchmark);
        }
        assert!(r.sound());
    }

    #[test]
    fn headroom_is_a_fraction_of_sampled_may_cells() {
        let mut ctx = Ctx::new(Scale::Quick, 7);
        ctx.threads = 2;
        let bench = &all_benchmarks()[0];
        let row = provenance_benchmark(bench, &ctx, 100, &NullObserver);
        assert!(row.may_cells_never_propagated <= row.may_cells_sampled);
        assert!((0.0..=1.0).contains(&row.headroom));
    }
}

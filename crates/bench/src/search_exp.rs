//! Search-comparison experiments: Figures 5, 7, 8 and Table 6 (§5).
//!
//! PEPPA-X and the baseline get the same search budget, measured in
//! dynamic instructions executed (the deterministic analogue of the
//! paper's equal wall-clock budgets). At each generation checkpoint the
//! best input of each method is FI-evaluated for its SDC probability.

use crate::scale::Ctx;
use peppa_apps::{all_benchmarks, Benchmark};
use peppa_core::{baseline_search, BaselineConfig, PeppaConfig, PeppaX};
use peppa_inject::{run_campaign, CampaignConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One generation checkpoint of the Figure 5 comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenPoint {
    pub generation: u64,
    pub peppa_sdc: f64,
    pub peppa_fitness: f64,
    pub peppa_input: Vec<f64>,
    /// Search budget (dynamic instructions) PEPPA-X consumed to reach
    /// this generation.
    pub budget_dynamic: u64,
    /// Best SDC probability the baseline found within the same budget.
    pub baseline_sdc: f64,
}

/// One benchmark's Figure 5 + 7 + 8 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchRow {
    pub benchmark: String,
    pub points: Vec<GenPoint>,
    /// Figure 7: baseline's best with 5× the saturation-checkpoint
    /// budget, vs PEPPA-X at the saturation checkpoint.
    pub peppa_at_saturation: f64,
    pub baseline_5x: f64,
    /// Figure 8: fixed analysis cost and wall-clock timing.
    pub analysis_cost_dynamic: u64,
    pub analysis_secs: f64,
    pub search_secs: f64,
    /// The SDC-bound input found (used downstream by Figure 9).
    pub sdc_bound_input: Vec<f64>,
    pub sdc_bound_prob: f64,
}

/// Figure 5/7/8 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchReportAll {
    pub rows: Vec<SearchRow>,
}

/// Runs the search comparison for one benchmark.
pub fn search_benchmark(bench: &Benchmark, ctx: &Ctx) -> SearchRow {
    let cfg = PeppaConfig {
        seed: ctx.seed,
        population: ctx.population(),
        distribution_trials: ctx.distribution_trials(),
        final_fi_trials: ctx.campaign_trials(),
        limits: ctx.limits,
        threads: ctx.threads,
        ..Default::default()
    };

    let t0 = Instant::now();
    let px = PeppaX::prepare(bench, cfg).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    let analysis_secs = t0.elapsed().as_secs_f64();

    let checkpoints = ctx.generation_checkpoints();
    let t1 = Instant::now();
    let report = px.search(&checkpoints);
    let search_secs = t1.elapsed().as_secs_f64();

    // Baseline with the largest checkpoint's budget ×5 (Figure 7's
    // extended run subsumes all smaller budgets for best_at_budget).
    let max_budget = report
        .checkpoints
        .last()
        .map(|c| c.search_cost_dynamic)
        .unwrap_or(0);
    let sat = ctx.saturation_checkpoint();
    let sat_budget = report
        .checkpoints
        .iter()
        .find(|c| c.generation == sat)
        .map(|c| c.search_cost_dynamic)
        .unwrap_or(max_budget);
    let baseline_budget = max_budget.max(sat_budget.saturating_mul(5));
    let baseline = baseline_search(
        bench,
        baseline_budget,
        BaselineConfig {
            seed: ctx.seed ^ 0xba5e,
            // The baseline's 1,000-trial campaigns are part of the
            // *method* (each candidate needs a statistically significant
            // SDC measurement, §5.1), not of our experiment scale — the
            // quick-scale knob only shrinks our own checkpoint
            // measurements.
            fi_trials: 1000,
            limits: ctx.limits,
            engine: ctx.engine,
            threads: ctx.threads,
            max_inputs: 10_000,
        },
    );

    let points: Vec<GenPoint> = report
        .checkpoints
        .iter()
        .map(|c| GenPoint {
            generation: c.generation,
            peppa_sdc: c.sdc.sdc_prob(),
            peppa_fitness: c.fitness,
            peppa_input: c.input.clone(),
            budget_dynamic: c.search_cost_dynamic,
            baseline_sdc: baseline
                .best_at_budget(c.search_cost_dynamic)
                .unwrap_or(0.0),
        })
        .collect();

    // PEPPA-X reports the best FI-validated input found within the
    // budget, so "at saturation" is the best over checkpoints up to it.
    let peppa_at_saturation = report
        .checkpoints
        .iter()
        .filter(|c| c.generation <= sat)
        .map(|c| c.sdc.sdc_prob())
        .fold(0.0f64, f64::max);
    let baseline_5x = baseline
        .best_at_budget(sat_budget.saturating_mul(5))
        .unwrap_or(0.0);

    let bound = report.sdc_bound();
    SearchRow {
        benchmark: bench.name.to_string(),
        points,
        peppa_at_saturation,
        baseline_5x,
        analysis_cost_dynamic: report.analysis_cost_dynamic,
        analysis_secs,
        search_secs,
        sdc_bound_input: bound.input.clone(),
        sdc_bound_prob: bound.sdc.sdc_prob(),
    }
}

/// Runs the comparison for every benchmark (Figures 5, 7, 8).
pub fn run_search(ctx: &Ctx) -> SearchReportAll {
    SearchReportAll {
        rows: all_benchmarks()
            .iter()
            .map(|b| search_benchmark(b, ctx))
            .collect(),
    }
}

/// Table 6: wall-clock time to evaluate ONE input in PEPPA-X (a single
/// profiled run, Eq. 2) vs the baseline (a full FI campaign).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerInputTimeRow {
    pub benchmark: String,
    pub peppa_secs: f64,
    pub baseline_secs: f64,
    pub speedup: f64,
}

/// Table 6 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerInputTimeReport {
    pub rows: Vec<PerInputTimeRow>,
}

impl PerInputTimeReport {
    pub fn mean_speedup(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.speedup).sum::<f64>() / self.rows.len() as f64
    }
}

/// Runs Table 6 on the reference inputs.
pub fn run_per_input_time(ctx: &Ctx) -> PerInputTimeReport {
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        // PEPPA-X per-input evaluation: one profiled run (the SDC-score
        // weighting is a linear pass over the profile, measured too).
        let small =
            peppa_core::fuzz_small_input(&b, ctx.limits, peppa_core::SmallInputConfig::default())
                .unwrap();
        let scores = peppa_core::derive_sdc_scores(
            &b,
            &small.input,
            ctx.limits,
            ctx.distribution_trials(),
            ctx.seed,
            true,
            ctx.threads,
        )
        .unwrap();

        let t0 = Instant::now();
        let _ = peppa_core::fitness_of_input(&b, &scores, &b.reference_input, ctx.limits)
            .expect("reference input runs");
        let peppa_secs = t0.elapsed().as_secs_f64();

        // Baseline per-input evaluation: a full FI campaign (serial, as
        // the paper measures both methods without parallelization).
        let t1 = Instant::now();
        let _ = run_campaign(
            &b.module,
            &b.reference_input,
            ctx.limits,
            CampaignConfig {
                trials: ctx.campaign_trials(),
                seed: ctx.seed,
                hang_factor: 8,
                threads: 1,
                burst: 0,
                engine: ctx.engine,
            },
        )
        .unwrap();
        let baseline_secs = t1.elapsed().as_secs_f64();

        rows.push(PerInputTimeRow {
            benchmark: b.name.to_string(),
            peppa_secs,
            baseline_secs,
            speedup: if peppa_secs > 0.0 {
                baseline_secs / peppa_secs
            } else {
                f64::INFINITY
            },
        });
    }
    PerInputTimeReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn search_comparison_runs_on_one_benchmark() {
        let mut ctx = Ctx::new(Scale::Quick, 2);
        ctx.threads = 0;
        let b = peppa_apps::pathfinder::benchmark();
        let row = search_benchmark(&b, &ctx);
        assert_eq!(row.points.len(), ctx.generation_checkpoints().len());
        for p in &row.points {
            assert!((0.0..=1.0).contains(&p.peppa_sdc));
            assert!((0.0..=1.0).contains(&p.baseline_sdc));
        }
        // Budgets grow with generations.
        for w in row.points.windows(2) {
            assert!(w[1].budget_dynamic > w[0].budget_dynamic);
        }
        assert!(
            row.sdc_bound_prob > 0.0,
            "search found no SDC-prone input at all"
        );
    }
}

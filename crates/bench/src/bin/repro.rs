//! `repro` — regenerate the PEPPA-X paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale quick|paper] [--seed N] [--out DIR]
//!       [--threads N] [--engine interp|compiled]
//!       [--trace-out FILE.jsonl] [--metrics-out FILE.json] [--quiet]
//!
//! experiments:
//!   fig1 table2        initial FI study (shared runs)
//!   fig2 table3        per-instruction rankings
//!   table4             pruning ratios (static, fast)
//!   table5             distribution-analysis time
//!   fig5 fig7 fig8     search comparison (shared runs)
//!   fig6               input-space heat maps
//!   table6             per-input evaluation time
//!   fig9               protection stress test
//!   static-rank        static masking predictor vs FI ground truth
//!   hybrid             static prune table vs FI ground truth
//!                      (results/hybrid.json; exits 1 on a soundness
//!                      violation; `--smoke` shrinks it to CI size)
//!   precision          per-bit interprocedural summaries vs the legacy
//!                      context-insensitive pipeline: masked-cell and
//!                      skip-ratio before/after, monotonicity gate,
//!                      median-skip-ratio floor (results/precision.json;
//!                      exits 1 on a gate violation)
//!   provenance         shadow-taint traced campaigns vs static reach:
//!                      containment (exit 1 on violation) + headroom
//!                      (results/provenance.json; `--smoke` for CI size)
//!   snapshot           checkpoint/fork campaign engine: wall-clock
//!                      speedup + bit-identity with the classic runner
//!                      (results/snapshot.json; exits 1 on divergence;
//!                      `--smoke` shrinks it to CI size)
//!   optstudy           optimization-vs-SDC-vulnerability study: -O2
//!                      each benchmark and compare dynamic cost, FI
//!                      outcome distributions, provenance-paired
//!                      per-instruction SDC ranks, and GA worst-case
//!                      input transfer against -O0
//!                      (results/optstudy.json; exits 1 if the geomean
//!                      dynamic-instruction reduction falls below 10%;
//!                      `--smoke` shrinks it to CI size)
//!   baseline           VM + campaign throughput (BENCH_baseline.json)
//!   all                everything above
//! ```
//!
//! Each experiment prints a paper-shaped text rendering and, with
//! `--out`, writes the raw data as JSON for downstream plotting.
//!
//! The observability flags mirror the `peppa` CLI: `--trace-out`
//! appends every pipeline event of instrumented experiments (currently
//! `baseline` and `provenance`) as JSONL, `--metrics-out` writes a
//! metrics snapshot on exit, `--chrome-trace` writes a Chrome
//! trace-event JSON file (loadable in Perfetto / `chrome://tracing`),
//! and `--quiet` suppresses the live progress reporter.
//!
//! `--engine compiled` runs every FI campaign on the register-allocated
//! threaded-bytecode engine instead of the tree-walking interpreter.
//! Outcomes are bit-identical either way (the engine differential test
//! enforces this), so the flag is purely a wall-clock knob — except for
//! `baseline`, whose per-engine columns always measure both.

use peppa_bench::{render, scale::Scale, Ctx};
use peppa_obs::{
    ChromeTrace, JsonlJournal, MetricsRegistry, MultiObserver, Observer, ProgressReporter,
};
use peppa_vm::EngineKind;
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: repro <fig1|fig2|fig5|fig6|fig7|fig8|fig9|table2..6|static-rank|hybrid|precision|snapshot|optstudy|baseline|all> \
             [--scale quick|paper] [--seed N] [--out DIR] [--threads N] [--smoke] \
             [--engine interp|compiled] [--trace-out FILE.jsonl] [--metrics-out FILE.json] \
             [--chrome-trace FILE.json] [--quiet]"
        );
        std::process::exit(2);
    }

    let mut experiments: Vec<String> = Vec::new();
    let mut scale = Scale::Quick;
    let mut seed = 2021u64; // the paper's year, why not
    let mut out: Option<PathBuf> = None;
    let mut threads = 0usize;
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut chrome_trace: Option<PathBuf> = None;
    let mut quiet = false;
    let mut smoke = false;
    let mut engine = EngineKind::Interp;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale = Scale::parse(&v).unwrap_or_else(|| panic!("unknown scale `{v}`"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be u64");
            }
            "--out" => out = Some(PathBuf::from(it.next().expect("--out needs a dir"))),
            "--threads" => {
                threads = it
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("threads must be usize");
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(it.next().expect("--trace-out needs a file")));
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    it.next().expect("--metrics-out needs a file"),
                ));
            }
            "--chrome-trace" => {
                chrome_trace = Some(PathBuf::from(
                    it.next().expect("--chrome-trace needs a file"),
                ));
            }
            "--engine" => {
                let v = it.next().expect("--engine needs a value");
                engine = v
                    .parse()
                    .unwrap_or_else(|e: String| panic!("--engine: {e}"));
            }
            "--quiet" => quiet = true,
            "--smoke" => smoke = true,
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "fig1",
            "table2",
            "fig2",
            "table3",
            "table4",
            "table5",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "table6",
            "fig9",
            "static-rank",
            "hybrid",
            "precision",
            "provenance",
            "snapshot",
            "optstudy",
            "faultmodel",
            "ablation",
            "baseline",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let mut ctx = Ctx::new(scale, seed);
    ctx.threads = threads;
    ctx.engine = engine;
    if let Some(dir) = &out {
        std::fs::create_dir_all(dir).expect("create output dir");
    }

    // Observer stack for instrumented experiments (same sinks the
    // `peppa` CLI wires up): journal + metrics registry + progress line.
    let mut multi = MultiObserver::new();
    if let Some(path) = &trace_out {
        let journal = JsonlJournal::create(path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        multi.push(Arc::new(journal));
    }
    let registry: Option<Arc<MetricsRegistry>> = metrics_out.as_ref().map(|_| {
        let reg = Arc::new(MetricsRegistry::new());
        multi.push(Arc::clone(&reg) as Arc<dyn Observer>);
        reg
    });
    if let Some(path) = &chrome_trace {
        multi.push(Arc::new(ChromeTrace::create(path)));
    }
    if !quiet {
        multi.push(Arc::new(ProgressReporter::new(
            std::time::Duration::from_millis(200),
        )));
    }
    let observer: Arc<dyn Observer> = Arc::new(multi);

    let dump = |name: &str, json: String| {
        if let Some(dir) = &out {
            let path = dir.join(format!("{name}.json"));
            std::fs::write(&path, json).expect("write json");
            eprintln!("[repro] wrote {}", path.display());
        }
    };

    // The search experiment feeds several artifacts; compute lazily once.
    let mut failed = false;
    let mut search_report: Option<peppa_bench::search_exp::SearchReportAll> = None;
    let mut study_report: Option<peppa_bench::study::StudyReport> = None;
    let mut rank_report: Option<peppa_bench::ranks::RankReport> = None;

    for exp in &experiments {
        eprintln!("[repro] running {exp} at {scale:?} scale (seed {seed})...");
        let t0 = std::time::Instant::now();
        match exp.as_str() {
            "fig1" | "table2" => {
                if study_report.is_none() {
                    study_report = Some(peppa_bench::study::run_study(&ctx));
                }
                let r = study_report.as_ref().unwrap();
                if exp == "fig1" {
                    println!("{}", render::render_fig1(r));
                } else {
                    println!("{}", render::render_table2(r));
                }
                dump("study", serde_json::to_string_pretty(r).unwrap());
            }
            "fig2" | "table3" => {
                if rank_report.is_none() {
                    rank_report = Some(peppa_bench::ranks::run_ranks(&ctx));
                }
                let r = rank_report.as_ref().unwrap();
                if exp == "fig2" {
                    println!("{}", render::render_fig2(r));
                } else {
                    println!("{}", render::render_table3(r));
                }
                dump("ranks", serde_json::to_string_pretty(r).unwrap());
            }
            "table4" => {
                let r = peppa_bench::pruning_exp::run_pruning_ratios();
                println!("{}", render::render_table4(&r));
                dump("table4", serde_json::to_string_pretty(&r).unwrap());
            }
            "table5" => {
                let r = peppa_bench::pruning_exp::run_analysis_time(&ctx);
                println!("{}", render::render_table5(&r));
                dump("table5", serde_json::to_string_pretty(&r).unwrap());
            }
            "fig5" | "fig7" | "fig8" => {
                if search_report.is_none() {
                    search_report = Some(peppa_bench::search_exp::run_search(&ctx));
                }
                let r = search_report.as_ref().unwrap();
                match exp.as_str() {
                    "fig5" => println!("{}", render::render_fig5(r)),
                    "fig7" => println!("{}", render::render_fig7(r)),
                    _ => println!("{}", render::render_fig8(r)),
                }
                dump("search", serde_json::to_string_pretty(r).unwrap());
            }
            "fig6" => {
                let maps = peppa_bench::heatmap::run_heatmaps(&ctx);
                println!("{}", render::render_fig6(&maps));
                dump("fig6", serde_json::to_string_pretty(&maps).unwrap());
            }
            "table6" => {
                let r = peppa_bench::search_exp::run_per_input_time(&ctx);
                println!("{}", render::render_table6(&r));
                dump("table6", serde_json::to_string_pretty(&r).unwrap());
            }
            "fig9" => {
                // Reuse SDC-bound inputs from a fig5 run when available.
                let bound: Vec<(String, Vec<f64>)> = search_report
                    .as_ref()
                    .map(|r| {
                        r.rows
                            .iter()
                            .map(|row| (row.benchmark.clone(), row.sdc_bound_input.clone()))
                            .collect()
                    })
                    .unwrap_or_default();
                let r = peppa_bench::protect_exp::run_protect(&ctx, &bound);
                println!("{}", render::render_fig9(&r));
                dump("fig9", serde_json::to_string_pretty(&r).unwrap());
            }
            "static-rank" => {
                let r = peppa_bench::static_rank::run_static_rank(&ctx);
                println!("{}", render::render_static_rank(&r));
                dump("static_rank", serde_json::to_string_pretty(&r).unwrap());
            }
            "hybrid" => {
                let r = peppa_bench::hybrid::run_hybrid(&ctx, smoke);
                println!("{}", peppa_bench::hybrid::render_hybrid(&r));
                dump("hybrid", serde_json::to_string_pretty(&r).unwrap());
                if !r.sound() {
                    eprintln!(
                        "[repro] FAIL: static pruning soundness violated (masked cell \
                         produced an SDC, or pruned counts diverged)"
                    );
                    failed = true;
                }
            }
            "precision" => {
                let r = peppa_bench::precision::run_precision(&ctx, smoke);
                println!("{}", peppa_bench::precision::render_precision(&r));
                dump("precision", serde_json::to_string_pretty(&r).unwrap());
                if !r.sound() {
                    eprintln!(
                        "[repro] FAIL: static-precision gate violated (fine analysis \
                         dropped a coarse-masked cell, or the median skip ratio fell \
                         below the floor)"
                    );
                    failed = true;
                }
            }
            "provenance" => {
                let r = peppa_bench::provenance::run_provenance(&ctx, smoke, observer.as_ref());
                println!("{}", peppa_bench::provenance::render_provenance(&r));
                dump("provenance", serde_json::to_string_pretty(&r).unwrap());
                if !r.sound() {
                    eprintln!(
                        "[repro] FAIL: provenance containment violated (a dynamically-\
                         propagating fault was statically classified ProvablyMasked)"
                    );
                    failed = true;
                }
            }
            "snapshot" => {
                let r = peppa_bench::snapshot_exp::run_snapshot_exp(&ctx, smoke, observer.as_ref());
                println!("{}", peppa_bench::snapshot_exp::render_snapshot_exp(&r));
                dump("snapshot", serde_json::to_string_pretty(&r).unwrap());
                if !r.sound() {
                    eprintln!(
                        "[repro] FAIL: snapshot determinism violated (snapshotted outcome \
                         counts diverged from the classic campaign runner)"
                    );
                    failed = true;
                }
            }
            "optstudy" => {
                let r = peppa_bench::optstudy::run_optstudy(&ctx, smoke);
                println!("{}", peppa_bench::optstudy::render_optstudy(&r));
                dump("optstudy", serde_json::to_string_pretty(&r).unwrap());
                if !r.sound() {
                    eprintln!(
                        "[repro] FAIL: optimization gate violated (geomean dynamic-\
                         instruction reduction at O2 fell below 10%)"
                    );
                    failed = true;
                }
            }
            "baseline" => {
                let r = peppa_bench::baseline::run_baseline(&ctx, Arc::clone(&observer));
                println!("{}", peppa_bench::baseline::render_baseline(&r));
                let json = serde_json::to_string_pretty(&r).unwrap();
                // The throughput baseline is a checked-in regression
                // reference, so it keeps a stable name at the top of
                // the output dir (default: working directory).
                let path = out
                    .clone()
                    .unwrap_or_else(|| PathBuf::from("."))
                    .join("BENCH_baseline.json");
                std::fs::write(&path, json).expect("write BENCH_baseline.json");
                eprintln!("[repro] wrote {}", path.display());
            }
            "faultmodel" => {
                let r = peppa_bench::faultmodel::run_fault_models(&ctx);
                println!("{}", render::render_faultmodel(&r));
                dump("faultmodel", serde_json::to_string_pretty(&r).unwrap());
            }
            "ablation" => {
                let bound: Vec<(String, Vec<f64>)> = search_report
                    .as_ref()
                    .map(|r| {
                        r.rows
                            .iter()
                            .map(|row| (row.benchmark.clone(), row.sdc_bound_input.clone()))
                            .collect()
                    })
                    .unwrap_or_default();
                let r = peppa_bench::protect_exp::run_ablation(&ctx, &bound);
                println!("{}", render::render_ablation(&r));
                dump("ablation", serde_json::to_string_pretty(&r).unwrap());
            }
            other => {
                eprintln!("[repro] unknown experiment `{other}` — skipping");
            }
        }
        eprintln!("[repro] {exp} done in {:.1}s\n", t0.elapsed().as_secs_f64());
    }

    observer.flush();
    if let (Some(path), Some(reg)) = (&metrics_out, &registry) {
        std::fs::write(path, reg.snapshot_json())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("[repro] wrote {}", path.display());
    }
    if failed {
        std::process::exit(1);
    }
}

//! Differential test for the snapshot/fork campaign engine: on every
//! benchmark, for every snapshot count and thread count, the
//! snapshotted runner must produce outcome counts **bit-identical** to
//! the classic [`run_campaign`] under the same `CampaignConfig` — the
//! engine is a pure wall-clock optimization, never a measurement
//! change. The taint-traced composition (`--snapshots
//! --trace-propagation`) is held to the same bar, down to the
//! per-trial provenance records.
//!
//! CI runs this file by name and fails if it is filtered out — see
//! `.github/workflows/ci.yml`.

use peppa_apps::all_benchmarks;
use peppa_inject::{
    run_campaign, run_campaign_snapshotted, run_campaign_snapshotted_traced, run_campaign_traced,
    CampaignConfig, CampaignResult, SnapshotConfig,
};
use peppa_vm::ExecLimits;

const TRIALS: u32 = 16;
const SEED: u64 = 0xd1ff;

fn cfg(threads: usize) -> CampaignConfig {
    CampaignConfig {
        trials: TRIALS,
        seed: SEED,
        hang_factor: 8,
        threads,
        burst: 0,
        ..Default::default()
    }
}

fn counts(r: &CampaignResult) -> (u32, u32, u32, u32) {
    (r.sdc, r.crash, r.hang, r.benign)
}

#[test]
fn snapshotted_outcomes_bit_identical_on_all_benchmarks() {
    let limits = ExecLimits::default();
    for bench in all_benchmarks() {
        // One cached full-campaign reference per benchmark; every
        // snapshotted variant must match it exactly.
        let full = run_campaign(&bench.module, &bench.reference_input, limits, cfg(2))
            .unwrap_or_else(|e| panic!("{}: full campaign failed: {e}", bench.name));
        for k in [0u32, 1, 8, 64] {
            for threads in [1usize, 4] {
                let snap = run_campaign_snapshotted(
                    &bench.module,
                    &bench.reference_input,
                    limits,
                    cfg(threads),
                    SnapshotConfig {
                        snapshots: k,
                        converge_exit: true,
                    },
                )
                .unwrap_or_else(|e| {
                    panic!("{}: snapshotted campaign (k={k}) failed: {e}", bench.name)
                });
                assert_eq!(
                    counts(&full),
                    counts(&snap.campaign),
                    "{}: k={k} threads={threads} diverged from the full campaign",
                    bench.name
                );
                assert_eq!(
                    snap.stats.restores + snap.stats.full_runs,
                    TRIALS as u64,
                    "{}: k={k} trials unaccounted",
                    bench.name
                );
                if k == 0 {
                    assert_eq!(snap.stats.snapshots, 0, "{}", bench.name);
                } else {
                    assert!(
                        snap.stats.snapshots >= 1 && snap.stats.snapshots <= k,
                        "{}: k={k} captured {}",
                        bench.name,
                        snap.stats.snapshots
                    );
                    assert!(snap.stats.restores > 0, "{}: k={k}", bench.name);
                }
            }
        }
    }
}

#[test]
fn snapshotted_traced_composition_bit_identical_on_all_benchmarks() {
    let limits = ExecLimits::default();
    for bench in all_benchmarks() {
        let traced = run_campaign_traced(&bench.module, &bench.reference_input, limits, cfg(2))
            .unwrap_or_else(|e| panic!("{}: traced campaign failed: {e}", bench.name));
        let snap = run_campaign_snapshotted_traced(
            &bench.module,
            &bench.reference_input,
            limits,
            cfg(4),
            SnapshotConfig {
                snapshots: 8,
                converge_exit: true,
            },
        )
        .unwrap_or_else(|e| panic!("{}: snapshotted traced campaign failed: {e}", bench.name));
        assert_eq!(
            counts(&traced.campaign),
            counts(&snap.traced.campaign),
            "{}: snapshotted traced counts diverged",
            bench.name
        );
        assert_eq!(
            snap.stats.converged_exits, 0,
            "{}: tracing must observe the whole suffix",
            bench.name
        );
        for (x, y) in traced.trials.iter().zip(&snap.traced.trials) {
            assert_eq!(x.outcome, y.outcome, "{} trial {}", bench.name, x.trial);
            assert_eq!(
                (x.site, x.bit, x.sid),
                (y.site, y.bit, y.sid),
                "{} trial {}",
                bench.name,
                x.trial
            );
            assert_eq!(x.report.seeded, y.report.seeded);
            assert_eq!(x.report.seed_mask, y.report.seed_mask);
            assert_eq!(x.report.seed_dynamic, y.report.seed_dynamic);
            assert_eq!(
                x.report.tainted_defs, y.report.tainted_defs,
                "{} trial {}",
                bench.name, x.trial
            );
            assert_eq!(
                x.report.sid_hits, y.report.sid_hits,
                "{} trial {}",
                bench.name, x.trial
            );
            assert_eq!(x.report.first_sink, y.report.first_sink);
            assert_eq!(x.report.extinction_dynamic, y.report.extinction_dynamic);
            assert_eq!(x.report.live_at_end, y.report.live_at_end);
        }
    }
}

//! Fault-provenance campaigns: statistical FI with a shadow-taint trace
//! attached to every trial.
//!
//! [`run_campaign_traced`] is the observability variant of
//! [`crate::run_campaign`]: each faulty execution runs under
//! [`peppa_vm::TaintHook`], so besides the outcome the campaign records
//! *how* each fault travelled — the seed's static instruction, every sid
//! that touched taint, the first observable sink reached, and where the
//! taint went extinct if it never reached one. Each trial emits an
//! [`Event::TrialProvenance`] right after its `TrialFinished`, feeding
//! the journal, the Chrome trace exporter, and the propagation heatmap.
//!
//! Tracing never changes what a campaign measures: fault sampling uses
//! the same per-trial RNG streams as the untraced runner, and the shadow
//! engine only observes the interpreter, so outcome counts are identical
//! to [`crate::run_campaign`] at every thread count.

use crate::campaign::{
    effective_threads, golden_run_on, sample_fault_burst, CampaignConfig, CampaignError,
    CampaignResult, SnapshotConfig, SnapshotStats,
};
use crate::forkpoint::{fork_point_for, plan_fork_points};
use crate::outcome::{classify, FaultOutcome};
use peppa_ir::{Instr, Module};
use peppa_obs::{Event, NullObserver, Observer, Span};
use peppa_stats::{binomial_ci, ci::Z_95, Pcg64};
use peppa_vm::{
    encode_inputs, CompiledModule, Engine, EngineKind, ExecHook, ExecLimits, InjectionTarget,
    TaintHook, TaintReport, Vm,
};
use std::time::Instant;

/// One trial of a traced campaign: the classic outcome plus the taint
/// provenance of the faulty run.
#[derive(Debug, Clone)]
pub struct TracedTrial {
    /// Logical trial index (`0..trials`).
    pub trial: u32,
    pub outcome: FaultOutcome,
    /// Sampled dynamic fault site.
    pub site: u64,
    /// Sampled bit position.
    pub bit: u32,
    /// Static instruction the sampled dynamic site belongs to.
    pub sid: u32,
    /// Shadow-taint provenance of the faulty execution.
    pub report: TaintReport,
}

/// A [`CampaignResult`] plus per-trial provenance, indexed by trial.
#[derive(Debug, Clone)]
pub struct TracedCampaignResult {
    pub campaign: CampaignResult,
    /// `trials[t]` is trial `t`'s record, whatever order trials finished
    /// in — the traced result is thread-count-invariant.
    pub trials: Vec<TracedTrial>,
}

impl TracedCampaignResult {
    /// Trials whose taint reached an observable sink.
    pub fn propagated(&self) -> usize {
        self.trials.iter().filter(|t| t.report.propagated()).count()
    }

    /// Trials whose taint died before reaching any sink.
    pub fn extinguished(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| t.report.extinguished())
            .count()
    }
}

/// Maps every value-producing dynamic instruction of the golden run to
/// its static instruction — the traced campaign needs the seed sid even
/// when the fault never activates in the faulty run (hang budgets can
/// cut a run short of its site).
struct SidMapHook {
    sids: Vec<u32>,
}

impl ExecHook for SidMapHook {
    const ENABLED: bool = true;

    #[inline]
    fn def_value(&mut self, ins: &Instr, _bits: u64) {
        self.sids.push(ins.sid.0);
    }
}

struct TracedReport {
    trial: u32,
    outcome: FaultOutcome,
    site: u64,
    bit: u32,
    sid: u32,
    latency_ns: u64,
    report: TaintReport,
}

impl TracedReport {
    fn emit(&self, observer: &dyn Observer) {
        observer.on_event(&Event::TrialFinished {
            trial: self.trial,
            outcome: self.outcome.into(),
            site: self.site,
            bit: self.bit,
            latency_ns: self.latency_ns,
        });
        let r = &self.report;
        observer.on_event(&Event::TrialProvenance {
            trial: self.trial,
            outcome: self.outcome.into(),
            site: self.site,
            bit: self.bit,
            sid: self.sid,
            seeded: r.seeded,
            propagated: r.propagated(),
            sink: r.first_sink.map(|s| s.kind.as_str().to_string()),
            hops: r.tainted_defs,
            seed_dynamic: r.seed_dynamic,
            extinction_dynamic: r.extinction_dynamic,
            sid_hits: r.sid_hits.clone(),
        });
    }
}

/// [`crate::run_campaign`] with shadow-taint provenance per trial.
pub fn run_campaign_traced(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
) -> Result<TracedCampaignResult, CampaignError> {
    run_campaign_traced_observed(module, inputs, limits, cfg, &NullObserver)
}

/// [`run_campaign_traced`] with an [`Observer`] attached.
///
/// Event stream: `CampaignStarted`, `GoldenRun`, per trial a
/// `TrialFinished` immediately followed by its `TrialProvenance` (in
/// completion order; the `trial` field carries the logical index), and
/// `CampaignFinished`. The campaign phases are bracketed by
/// `golden`/`trials` spans for the Chrome trace exporter. As in the
/// untraced runner, workers never touch the observer: reports drain over
/// a bounded channel on the calling thread.
pub fn run_campaign_traced_observed(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
    observer: &dyn Observer,
) -> Result<TracedCampaignResult, CampaignError> {
    let start = Instant::now();
    observer.on_event(&Event::CampaignStarted {
        benchmark: module.name.clone(),
        trials: cfg.trials,
        seed: cfg.seed,
        threads: cfg.threads,
        engine: cfg.engine.as_str().to_string(),
    });

    // Lower once per campaign; workers share the read-only bytecode.
    let code = (cfg.engine == EngineKind::Compiled).then(|| CompiledModule::lower(module));

    let golden = {
        let _span = Span::enter(observer, "golden");
        golden_run_on(module, inputs, limits, code.as_ref())?
    };
    if golden.profile.value_dynamic == 0 {
        return Err(CampaignError::NoFaultSites);
    }
    // Replay the golden run under the sid-map hook; the hook does not
    // perturb execution.
    let bits = encode_inputs(module.entry_func(), inputs);
    let sid_map = {
        let eng = Engine::new(module, limits, code.as_ref());
        let mut hook = SidMapHook { sids: Vec::new() };
        eng.run_with_hook(&bits, None, &mut hook);
        hook.sids
    };
    debug_assert_eq!(sid_map.len() as u64, golden.profile.value_dynamic);
    observer.on_event(&Event::GoldenRun {
        benchmark: module.name.clone(),
        dynamic: golden.profile.dynamic,
        value_dynamic: golden.profile.value_dynamic,
        coverage: golden.profile.coverage(),
    });

    let faulty_limits = ExecLimits {
        max_dynamic: golden
            .profile
            .dynamic
            .saturating_mul(cfg.hang_factor)
            .saturating_add(10_000),
        ..limits
    };

    let run_trial = |t: u32| -> TracedReport {
        // Same per-trial stream as the untraced campaign: identical
        // faults, identical outcomes.
        let mut rng = Pcg64::new(cfg.seed ^ (t as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let inj = sample_fault_burst(&mut rng, golden.profile.value_dynamic, cfg.burst);
        let site = match inj.target {
            InjectionTarget::DynamicIndex(k) => k,
            InjectionTarget::StaticInstance { instance, .. } => instance,
        };
        let eng = Engine::new(module, faulty_limits, code.as_ref());
        let mut hook = TaintHook::new(module);
        let t0 = Instant::now();
        let faulty = eng.run_with_hook(&bits, Some(inj), &mut hook);
        let latency_ns = t0.elapsed().as_nanos() as u64;
        TracedReport {
            trial: t,
            outcome: classify(&golden, &faulty),
            site,
            bit: inj.bit,
            sid: sid_map[site as usize],
            latency_ns,
            report: hook.finish(),
        }
    };

    let nthreads = effective_threads(cfg.threads, cfg.trials as usize);
    let mut reports: Vec<Option<TracedReport>> = Vec::with_capacity(cfg.trials as usize);
    {
        let _span = Span::enter(observer, "trials");
        if nthreads <= 1 {
            for t in 0..cfg.trials {
                let r = run_trial(t);
                r.emit(observer);
                reports.push(Some(r));
            }
        } else {
            reports.resize_with(cfg.trials as usize, || None);
            let chunk = reports.len().div_ceil(nthreads);
            let (tx, rx) = std::sync::mpsc::sync_channel::<TracedReport>(1024);
            crossbeam::thread::scope(|s| {
                for (ci, _) in (0..cfg.trials as usize).step_by(chunk).enumerate() {
                    let run_trial = &run_trial;
                    let tx = tx.clone();
                    let lo = ci * chunk;
                    let hi = (lo + chunk).min(cfg.trials as usize);
                    s.spawn(move |_| {
                        for t in lo..hi {
                            // The receiver outlives the scope; send only
                            // fails if the collector was dropped, in
                            // which case reporting is moot.
                            let _ = tx.send(run_trial(t as u32));
                        }
                    });
                }
                drop(tx);
                // Drain on the scope's owning thread so the observer
                // sees a single-threaded event stream.
                for r in rx.iter() {
                    r.emit(observer);
                    let slot = r.trial as usize;
                    reports[slot] = Some(r);
                }
            })
            .expect("traced campaign worker panicked");
        }
    }
    let trials: Vec<TracedTrial> = reports
        .into_iter()
        .map(|r| {
            let r = r.expect("every trial reported");
            TracedTrial {
                trial: r.trial,
                outcome: r.outcome,
                site: r.site,
                bit: r.bit,
                sid: r.sid,
                report: r.report,
            }
        })
        .collect();

    let mut sdc = 0;
    let mut crash = 0;
    let mut hang = 0;
    let mut benign = 0;
    for t in &trials {
        match t.outcome {
            FaultOutcome::Sdc => sdc += 1,
            FaultOutcome::Crash => crash += 1,
            FaultOutcome::Hang => hang += 1,
            FaultOutcome::Benign => benign += 1,
        }
    }

    observer.on_event(&Event::CampaignFinished {
        trials: cfg.trials,
        sdc,
        crash,
        hang,
        benign,
        wall_ns: start.elapsed().as_nanos() as u64,
    });
    observer.flush();

    Ok(TracedCampaignResult {
        campaign: CampaignResult {
            trials: cfg.trials,
            sdc,
            crash,
            hang,
            benign,
            sdc_ci: binomial_ci(sdc as u64, cfg.trials as u64, Z_95),
            executions: cfg.trials as u64 + 1,
            golden_dynamic: golden.profile.dynamic,
        },
        trials,
    })
}

/// A [`TracedCampaignResult`] plus the snapshot engine's accounting.
#[derive(Debug, Clone)]
pub struct SnapshottedTracedCampaignResult {
    pub traced: TracedCampaignResult,
    pub stats: SnapshotStats,
}

/// [`run_campaign_traced`] with the golden prefix amortized across
/// trials — the `--snapshots K --trace-propagation` runner.
///
/// Faults are pre-sampled from the same per-trial streams, fork points
/// are planned exactly as in
/// [`crate::run_campaign_snapshotted`], and each resumed trial runs
/// under a [`TaintHook`] rebuilt for the snapshot's frame stack
/// ([`TaintHook::resumed`]). The skipped prefix carries no taint (the
/// fault has not been injected yet), so per-trial provenance records are
/// bit-identical to the full traced runner's. Convergence early-exit is
/// deliberately disabled: the shadow engine must observe the entire
/// suffix to report extinction and sink arrivals.
pub fn run_campaign_snapshotted_traced(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
    snap: SnapshotConfig,
) -> Result<SnapshottedTracedCampaignResult, CampaignError> {
    run_campaign_snapshotted_traced_observed(module, inputs, limits, cfg, snap, &NullObserver)
}

/// [`run_campaign_snapshotted_traced`] with an [`Observer`] attached.
/// Event stream: as [`run_campaign_traced_observed`], plus one
/// `SnapshotCaptured` per fork point after `GoldenRun` and a
/// `SnapshotStats` immediately before the terminal `CampaignFinished`.
pub fn run_campaign_snapshotted_traced_observed(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
    snap: SnapshotConfig,
    observer: &dyn Observer,
) -> Result<SnapshottedTracedCampaignResult, CampaignError> {
    let start = Instant::now();
    observer.on_event(&Event::CampaignStarted {
        benchmark: module.name.clone(),
        trials: cfg.trials,
        seed: cfg.seed,
        threads: cfg.threads,
        engine: cfg.engine.as_str().to_string(),
    });

    // Lower once per campaign; workers share the read-only bytecode.
    let code = (cfg.engine == EngineKind::Compiled).then(|| CompiledModule::lower(module));

    let golden = {
        let _span = Span::enter(observer, "golden");
        golden_run_on(module, inputs, limits, code.as_ref())?
    };
    if golden.profile.value_dynamic == 0 {
        return Err(CampaignError::NoFaultSites);
    }
    // Replay the golden run under the sid-map hook; the hook does not
    // perturb execution.
    let bits = encode_inputs(module.entry_func(), inputs);
    let sid_map = {
        let eng = Engine::new(module, limits, code.as_ref());
        let mut hook = SidMapHook { sids: Vec::new() };
        eng.run_with_hook(&bits, None, &mut hook);
        hook.sids
    };
    debug_assert_eq!(sid_map.len() as u64, golden.profile.value_dynamic);
    observer.on_event(&Event::GoldenRun {
        benchmark: module.name.clone(),
        dynamic: golden.profile.dynamic,
        value_dynamic: golden.profile.value_dynamic,
        coverage: golden.profile.coverage(),
    });

    // Pre-sample, plan, capture — same planning as the untraced
    // snapshotted runner, so both amortize identically.
    let injections: Vec<peppa_vm::Injection> = (0..cfg.trials)
        .map(|t| {
            let mut rng = Pcg64::new(cfg.seed ^ (t as u64).wrapping_mul(0x9e3779b97f4a7c15));
            sample_fault_burst(&mut rng, golden.profile.value_dynamic, cfg.burst)
        })
        .collect();
    let sites: Vec<u64> = injections
        .iter()
        .map(|inj| match inj.target {
            InjectionTarget::DynamicIndex(k) => k,
            InjectionTarget::StaticInstance { instance, .. } => instance,
        })
        .collect();
    let points = plan_fork_points(&sites, snap.snapshots);
    let snaps = if points.is_empty() {
        Vec::new()
    } else {
        let _span = Span::enter(observer, "capture");
        let vm = Vm::new(module, limits);
        let (replay, snaps) = vm.run_with_snapshots(&bits, &points);
        debug_assert!(replay.status.is_ok());
        debug_assert_eq!(snaps.len(), points.len());
        snaps
    };
    let snap_bytes: u64 = snaps.iter().map(|s| s.bytes()).sum();
    for (i, s) in snaps.iter().enumerate() {
        observer.on_event(&Event::SnapshotCaptured {
            index: i as u32,
            value_dynamic: s.value_dynamic(),
            dynamic: s.dynamic(),
            bytes: s.bytes(),
        });
    }

    let faulty_limits = ExecLimits {
        max_dynamic: golden
            .profile
            .dynamic
            .saturating_mul(cfg.hang_factor)
            .saturating_add(10_000),
        ..limits
    };

    use std::sync::atomic::{AtomicU64, Ordering};
    let restores = AtomicU64::new(0);
    let full_runs = AtomicU64::new(0);
    let prefix_saved = AtomicU64::new(0);

    let run_trial = |t: u32| -> TracedReport {
        let inj = injections[t as usize];
        let site = sites[t as usize];
        let eng = Engine::new(module, faulty_limits, code.as_ref());
        let t0 = Instant::now();
        let (faulty, report) = match fork_point_for(&points, site) {
            None => {
                full_runs.fetch_add(1, Ordering::Relaxed);
                let mut hook = TaintHook::new(module);
                let faulty = eng.run_with_hook(&bits, Some(inj), &mut hook);
                (faulty, hook.finish())
            }
            Some(i) => {
                restores.fetch_add(1, Ordering::Relaxed);
                prefix_saved.fetch_add(snaps[i].dynamic(), Ordering::Relaxed);
                let mut hook = TaintHook::resumed(module, &snaps[i]);
                let faulty = eng.resume_from_with_hook(&snaps[i], Some(inj), &mut hook);
                (faulty, hook.finish())
            }
        };
        TracedReport {
            trial: t,
            outcome: classify(&golden, &faulty),
            site,
            bit: inj.bit,
            sid: sid_map[site as usize],
            latency_ns: t0.elapsed().as_nanos() as u64,
            report,
        }
    };

    let nthreads = effective_threads(cfg.threads, cfg.trials as usize);
    let mut reports: Vec<Option<TracedReport>> = Vec::with_capacity(cfg.trials as usize);
    {
        let _span = Span::enter(observer, "trials");
        if nthreads <= 1 {
            for t in 0..cfg.trials {
                let r = run_trial(t);
                r.emit(observer);
                reports.push(Some(r));
            }
        } else {
            reports.resize_with(cfg.trials as usize, || None);
            let chunk = reports.len().div_ceil(nthreads);
            let (tx, rx) = std::sync::mpsc::sync_channel::<TracedReport>(1024);
            crossbeam::thread::scope(|s| {
                for (ci, _) in (0..cfg.trials as usize).step_by(chunk).enumerate() {
                    let run_trial = &run_trial;
                    let tx = tx.clone();
                    let lo = ci * chunk;
                    let hi = (lo + chunk).min(cfg.trials as usize);
                    s.spawn(move |_| {
                        for t in lo..hi {
                            // The receiver outlives the scope; send only
                            // fails if the collector was dropped, in
                            // which case reporting is moot.
                            let _ = tx.send(run_trial(t as u32));
                        }
                    });
                }
                drop(tx);
                // Drain on the scope's owning thread so the observer
                // sees a single-threaded event stream.
                for r in rx.iter() {
                    r.emit(observer);
                    let slot = r.trial as usize;
                    reports[slot] = Some(r);
                }
            })
            .expect("snapshotted traced campaign worker panicked");
        }
    }
    let trials: Vec<TracedTrial> = reports
        .into_iter()
        .map(|r| {
            let r = r.expect("every trial reported");
            TracedTrial {
                trial: r.trial,
                outcome: r.outcome,
                site: r.site,
                bit: r.bit,
                sid: r.sid,
                report: r.report,
            }
        })
        .collect();

    let mut sdc = 0;
    let mut crash = 0;
    let mut hang = 0;
    let mut benign = 0;
    for t in &trials {
        match t.outcome {
            FaultOutcome::Sdc => sdc += 1,
            FaultOutcome::Crash => crash += 1,
            FaultOutcome::Hang => hang += 1,
            FaultOutcome::Benign => benign += 1,
        }
    }

    let stats = SnapshotStats {
        snapshots: snaps.len() as u32,
        bytes: snap_bytes,
        restores: restores.into_inner(),
        full_runs: full_runs.into_inner(),
        converged_exits: 0,
        prefix_instrs_saved: prefix_saved.into_inner(),
    };
    observer.on_event(&Event::SnapshotStats {
        snapshots: stats.snapshots,
        bytes: stats.bytes,
        restores: stats.restores,
        full_runs: stats.full_runs,
        converged_exits: stats.converged_exits,
        prefix_instrs_saved: stats.prefix_instrs_saved,
    });
    observer.on_event(&Event::CampaignFinished {
        trials: cfg.trials,
        sdc,
        crash,
        hang,
        benign,
        wall_ns: start.elapsed().as_nanos() as u64,
    });
    observer.flush();

    Ok(SnapshottedTracedCampaignResult {
        traced: TracedCampaignResult {
            campaign: CampaignResult {
                trials: cfg.trials,
                sdc,
                crash,
                hang,
                benign,
                sdc_ci: binomial_ci(sdc as u64, cfg.trials as u64, Z_95),
                executions: cfg.trials as u64 + 1,
                golden_dynamic: golden.profile.dynamic,
            },
            trials,
        },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use peppa_obs::PropagationHeatmap;

    const SRC: &str = r#"
        global float buf[64];
        fn main(n: int, s: float) {
            for (i = 0; i < n; i = i + 1) {
                buf[i] = s * i2f(i) + 1.0;
            }
            let acc = 0.0;
            for (i = 0; i < n; i = i + 1) {
                acc = acc + buf[i] * buf[i];
            }
            output acc;
        }
    "#;

    fn module() -> Module {
        peppa_lang::compile(SRC, "traced").unwrap()
    }

    fn cfg(trials: u32, seed: u64, threads: usize) -> CampaignConfig {
        CampaignConfig {
            trials,
            seed,
            hang_factor: 8,
            threads,
            burst: 0,
            engine: EngineKind::Interp,
        }
    }

    #[test]
    fn tracing_does_not_perturb_outcomes() {
        let m = module();
        let inputs = [16.0, 0.5];
        let plain = run_campaign(&m, &inputs, ExecLimits::default(), cfg(150, 7, 2)).unwrap();
        let traced =
            run_campaign_traced(&m, &inputs, ExecLimits::default(), cfg(150, 7, 2)).unwrap();
        assert_eq!(
            (plain.sdc, plain.crash, plain.hang, plain.benign),
            (
                traced.campaign.sdc,
                traced.campaign.crash,
                traced.campaign.hang,
                traced.campaign.benign
            )
        );
    }

    #[test]
    fn every_trial_has_a_provenance_record_in_order() {
        let m = module();
        let r =
            run_campaign_traced(&m, &[12.0, 0.25], ExecLimits::default(), cfg(80, 3, 4)).unwrap();
        assert_eq!(r.trials.len(), 80);
        for (i, t) in r.trials.iter().enumerate() {
            assert_eq!(t.trial as usize, i);
        }
    }

    #[test]
    fn sdc_trials_always_propagate() {
        // An SDC means the output stream differed, so the shadow taint
        // must have reached a sink — the dynamic half of the containment
        // argument.
        let m = module();
        let r =
            run_campaign_traced(&m, &[16.0, 0.5], ExecLimits::default(), cfg(200, 11, 0)).unwrap();
        assert!(r.campaign.sdc > 0, "kernel should produce SDCs");
        for t in &r.trials {
            if t.outcome == FaultOutcome::Sdc {
                assert!(t.report.seeded, "SDC without an applied fault: {t:?}");
                assert!(
                    t.report.propagated(),
                    "SDC whose taint never reached a sink: {t:?}"
                );
            }
            if t.report.seeded && t.outcome == FaultOutcome::Benign {
                // Benign faults either extinguish or reach a sink that
                // happened not to change the outcome (e.g. a branch
                // condition whose decision was unaffected).
                assert!(
                    t.report.extinguished() || t.report.propagated() || t.report.live_at_end > 0,
                    "{t:?}"
                );
            }
        }
    }

    #[test]
    fn traced_records_identical_across_thread_counts() {
        let m = module();
        let inputs = [14.0, 0.75];
        let a = run_campaign_traced(&m, &inputs, ExecLimits::default(), cfg(60, 41, 1)).unwrap();
        let b = run_campaign_traced(&m, &inputs, ExecLimits::default(), cfg(60, 41, 4)).unwrap();
        assert_eq!(a.trials.len(), b.trials.len());
        for (x, y) in a.trials.iter().zip(&b.trials) {
            assert_eq!(x.trial, y.trial);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!((x.site, x.bit, x.sid), (y.site, y.bit, y.sid));
            assert_eq!(x.report.seeded, y.report.seeded);
            assert_eq!(x.report.seed_mask, y.report.seed_mask);
            assert_eq!(x.report.tainted_defs, y.report.tainted_defs);
            assert_eq!(x.report.sid_hits, y.report.sid_hits);
            assert_eq!(x.report.first_sink, y.report.first_sink);
            assert_eq!(x.report.extinction_dynamic, y.report.extinction_dynamic);
        }
        assert_eq!(a.propagated(), b.propagated());
        assert_eq!(a.extinguished(), b.extinguished());
    }

    #[test]
    fn snapshotted_traced_records_identical_to_full_traced() {
        let m = module();
        let inputs = [16.0, 0.5];
        let full =
            run_campaign_traced(&m, &inputs, ExecLimits::default(), cfg(120, 29, 2)).unwrap();
        for k in [0, 1, 8] {
            for threads in [1, 4] {
                let snap = run_campaign_snapshotted_traced(
                    &m,
                    &inputs,
                    ExecLimits::default(),
                    cfg(120, 29, threads),
                    SnapshotConfig {
                        snapshots: k,
                        converge_exit: true,
                    },
                )
                .unwrap();
                assert_eq!(
                    (
                        full.campaign.sdc,
                        full.campaign.crash,
                        full.campaign.hang,
                        full.campaign.benign
                    ),
                    (
                        snap.traced.campaign.sdc,
                        snap.traced.campaign.crash,
                        snap.traced.campaign.hang,
                        snap.traced.campaign.benign
                    ),
                    "k={k} threads={threads}"
                );
                assert_eq!(
                    snap.stats.restores + snap.stats.full_runs,
                    120,
                    "k={k}: every trial is either resumed or full"
                );
                assert_eq!(snap.stats.converged_exits, 0, "tracing never converges-out");
                if k > 0 {
                    assert!(snap.stats.restores > 0, "k={k}");
                }
                for (x, y) in full.trials.iter().zip(&snap.traced.trials) {
                    assert_eq!(x.trial, y.trial);
                    assert_eq!(x.outcome, y.outcome, "trial {}", x.trial);
                    assert_eq!((x.site, x.bit, x.sid), (y.site, y.bit, y.sid));
                    assert_eq!(x.report.seeded, y.report.seeded);
                    assert_eq!(x.report.seed_mask, y.report.seed_mask);
                    assert_eq!(x.report.seed_dynamic, y.report.seed_dynamic);
                    assert_eq!(x.report.tainted_defs, y.report.tainted_defs);
                    assert_eq!(x.report.sid_hits, y.report.sid_hits, "trial {}", x.trial);
                    assert_eq!(x.report.first_sink, y.report.first_sink);
                    assert_eq!(x.report.extinction_dynamic, y.report.extinction_dynamic);
                    assert_eq!(x.report.live_at_end, y.report.live_at_end);
                }
            }
        }
    }

    #[test]
    fn traced_provenance_identical_across_engines() {
        // TaintHook is a shadow engine driven purely by the ExecHook
        // stream, and the compiled backend emits the interpreter's
        // stream bit-for-bit — so every provenance record must match.
        let m = module();
        let inputs = [16.0, 0.5];
        let a = run_campaign_traced(&m, &inputs, ExecLimits::default(), cfg(80, 13, 2)).unwrap();
        let b = run_campaign_traced(
            &m,
            &inputs,
            ExecLimits::default(),
            CampaignConfig {
                engine: EngineKind::Compiled,
                ..cfg(80, 13, 2)
            },
        )
        .unwrap();
        assert_eq!(
            (
                a.campaign.sdc,
                a.campaign.crash,
                a.campaign.hang,
                a.campaign.benign
            ),
            (
                b.campaign.sdc,
                b.campaign.crash,
                b.campaign.hang,
                b.campaign.benign
            )
        );
        for (x, y) in a.trials.iter().zip(&b.trials) {
            assert_eq!(x.trial, y.trial);
            assert_eq!(x.outcome, y.outcome, "trial {}", x.trial);
            assert_eq!((x.site, x.bit, x.sid), (y.site, y.bit, y.sid));
            assert_eq!(x.report.seeded, y.report.seeded);
            assert_eq!(x.report.seed_mask, y.report.seed_mask);
            assert_eq!(x.report.tainted_defs, y.report.tainted_defs);
            assert_eq!(x.report.sid_hits, y.report.sid_hits, "trial {}", x.trial);
            assert_eq!(x.report.first_sink, y.report.first_sink);
            assert_eq!(x.report.extinction_dynamic, y.report.extinction_dynamic);
            assert_eq!(x.report.live_at_end, y.report.live_at_end);
        }
    }

    #[test]
    fn heatmap_merge_invariant_across_thread_counts() {
        // The per-sid propagation heatmap is an order-invariant fold of
        // the TrialProvenance stream, so 1 worker and 4 workers must
        // produce the identical merged aggregate.
        let m = module();
        let inputs = [16.0, 0.5];
        let h1 = PropagationHeatmap::new();
        let h4 = PropagationHeatmap::new();
        run_campaign_traced_observed(&m, &inputs, ExecLimits::default(), cfg(100, 23, 1), &h1)
            .unwrap();
        run_campaign_traced_observed(&m, &inputs, ExecLimits::default(), cfg(100, 23, 4), &h4)
            .unwrap();
        assert_eq!(h1.trials(), 100);
        assert_eq!(h1.trials(), h4.trials());
        assert_eq!(h1.snapshot(), h4.snapshot());
        assert!(!h1.snapshot().is_empty(), "some trial must touch taint");
    }

    #[test]
    fn provenance_events_pair_with_trial_events() {
        struct Collecting(std::sync::Mutex<Vec<Event>>);
        impl Observer for Collecting {
            fn on_event(&self, event: &Event) {
                self.0.lock().unwrap().push(event.clone());
            }
        }
        let m = module();
        let obs = Collecting(std::sync::Mutex::new(Vec::new()));
        run_campaign_traced_observed(&m, &[12.0, 0.5], ExecLimits::default(), cfg(40, 5, 3), &obs)
            .unwrap();
        let events = obs.0.into_inner().unwrap();
        let finished = events
            .iter()
            .filter(|e| e.kind() == "trial_finished")
            .count();
        let prov = events
            .iter()
            .filter(|e| e.kind() == "trial_provenance")
            .count();
        assert_eq!(finished, 40);
        assert_eq!(prov, 40);
        // Each TrialFinished is immediately followed by its provenance
        // record for the same trial.
        for w in events.windows(2) {
            if let Event::TrialFinished { trial, .. } = &w[0] {
                match &w[1] {
                    Event::TrialProvenance { trial: p, .. } => assert_eq!(trial, p),
                    other => panic!("expected provenance after trial, got {other:?}"),
                }
            }
        }
        // Spans bracket the phases.
        assert!(events.iter().any(|e| e.kind() == "span_begin"));
        assert!(events.iter().any(|e| e.kind() == "span_end"));
    }
}

//! Statistical fault injection for PIR programs — the LLFI analogue.
//!
//! The paper's measurement methodology (§3.1.3–3.1.4):
//!
//! * single bit flips in a random dynamic instruction's **return value**
//!   (computing-component faults only; memory assumed ECC-protected);
//! * outcome classification into **SDC** (clean exit, wrong output),
//!   **crash** (trap), **hang** (budget exhaustion), or **benign**
//!   (identical output);
//! * SDC probability = SDCs / activated faults (return-value flips always
//!   activate, so the denominator is the trial count);
//! * 1,000 trials per program-level measurement, ~100 per instruction for
//!   per-instruction probabilities, 30 per representative in the pruned
//!   distribution analysis.
//!
//! Campaigns are embarrassingly parallel; [`campaign::run_campaign`]
//! fans trials out over scoped threads while keeping the per-trial RNG
//! stream independent of the thread schedule, so results are bit-for-bit
//! reproducible at any parallelism level.

pub mod campaign;
pub mod flags;
pub mod forkpoint;
pub mod outcome;
pub mod per_instr;
pub mod propagation;
pub mod provenance;

pub use campaign::{
    run_campaign, run_campaign_observed, run_campaign_pruned, run_campaign_pruned_gated,
    run_campaign_pruned_gated_observed, run_campaign_pruned_observed, run_campaign_snapshotted,
    run_campaign_snapshotted_observed, CampaignConfig, CampaignResult, GatedPrunedCampaignResult,
    PruneDecision, PruneGate, PrunedCampaignResult, SnapshotConfig, SnapshotStats,
    SnapshottedCampaignResult, StaticPrune,
};
pub use flags::{validate_flags, FlagError, InjectMode};
pub use forkpoint::{fork_point_for, plan_fork_points};
pub use outcome::{classify, FaultOutcome};
pub use per_instr::{per_instruction_sdc, PerInstrConfig, PerInstrResult};
pub use propagation::{generate_corpus, trace_propagation, CorpusEntry, PropagationTrace};
pub use provenance::{
    run_campaign_snapshotted_traced, run_campaign_snapshotted_traced_observed, run_campaign_traced,
    run_campaign_traced_observed, TracedCampaignResult, TracedTrial,
};

//! The `peppa inject` flag-compatibility matrix.
//!
//! Three orthogonal-looking knobs select the campaign runner, and not
//! every pair composes:
//!
//! | flags                              | runner                                      |
//! |------------------------------------|---------------------------------------------|
//! | (none)                             | [`crate::run_campaign`]                     |
//! | `--static-prune`                   | [`crate::run_campaign_pruned_gated`]        |
//! | `--trace-propagation`              | [`crate::run_campaign_traced`]              |
//! | `--snapshots K`                    | [`crate::run_campaign_snapshotted`]         |
//! | `--snapshots K --trace-propagation`| [`crate::run_campaign_snapshotted_traced`]  |
//! | `--static-prune --trace-propagation`| rejected: a skipped trial has no execution to trace |
//! | `--snapshots K --static-prune`     | rejected: pruning skips trials without executing them, so there is no suffix to resume — the prefix amortization has nothing to amortize on skipped trials and the two bookkeeping paths do not compose |
//!
//! The matrix lives here, behind [`validate_flags`], so the CLI and the
//! bench harness dispatch identically and the rejections are unit-tested
//! once instead of re-implemented per front end.
//!
//! `--engine {interp,compiled}` is *orthogonal* to this matrix: it
//! selects the execution backend inside whichever runner the row picks
//! (via `CampaignConfig::engine`), never the runner itself. Every
//! combination above composes with either engine, because the engines
//! are observably bit-identical — snapshots fork at the same
//! value-dynamic boundaries on compiled frames, and `TaintHook` tracing
//! attaches through the same `ExecHook` seam
//! (`crates/vm/tests/engine_differential.rs` holds the proof
//! obligations).

/// Which campaign runner a flag combination selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectMode {
    /// Classic statistical campaign.
    Plain,
    /// Statically-pruned campaign (gated on predicted savings).
    Pruned,
    /// Shadow-taint-traced campaign.
    Traced,
    /// Snapshot/fork campaign with `K` golden-prefix snapshots.
    Snapshotted { snapshots: u32 },
    /// Snapshot/fork campaign with per-trial taint tracing (the shadow
    /// engine resumes mid-stream; convergence early-exit is disabled so
    /// the taint observes the entire suffix).
    SnapshottedTraced { snapshots: u32 },
}

/// A rejected flag combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagError {
    /// `--static-prune --trace-propagation`.
    PruneWithTrace,
    /// `--snapshots --static-prune`.
    SnapshotsWithPrune,
}

impl std::fmt::Display for FlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlagError::PruneWithTrace => write!(
                f,
                "--static-prune and --trace-propagation are mutually \
                 exclusive (a skipped trial has no execution to trace)"
            ),
            FlagError::SnapshotsWithPrune => write!(
                f,
                "--snapshots and --static-prune are mutually exclusive \
                 (pruning skips trials without executing them, so there \
                 is no suffix for a snapshot to amortize; run them as \
                 separate campaigns)"
            ),
        }
    }
}

impl std::error::Error for FlagError {}

/// Maps the `peppa inject` flag triple to the runner it selects, or the
/// reason the combination is rejected. `snapshots` is `Some(k)` when
/// `--snapshots k` was given (including `k == 0`, which degenerates to
/// the classic runner inside the snapshotted engine).
pub fn validate_flags(
    snapshots: Option<u32>,
    static_prune: bool,
    trace_propagation: bool,
) -> Result<InjectMode, FlagError> {
    match (snapshots, static_prune, trace_propagation) {
        (Some(_), true, _) => Err(FlagError::SnapshotsWithPrune),
        (None, true, true) => Err(FlagError::PruneWithTrace),
        (Some(k), false, true) => Ok(InjectMode::SnapshottedTraced { snapshots: k }),
        (Some(k), false, false) => Ok(InjectMode::Snapshotted { snapshots: k }),
        (None, true, false) => Ok(InjectMode::Pruned),
        (None, false, true) => Ok(InjectMode::Traced),
        (None, false, false) => Ok(InjectMode::Plain),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix() {
        assert_eq!(validate_flags(None, false, false), Ok(InjectMode::Plain));
        assert_eq!(validate_flags(None, true, false), Ok(InjectMode::Pruned));
        assert_eq!(validate_flags(None, false, true), Ok(InjectMode::Traced));
        assert_eq!(
            validate_flags(Some(16), false, false),
            Ok(InjectMode::Snapshotted { snapshots: 16 })
        );
        assert_eq!(
            validate_flags(Some(8), false, true),
            Ok(InjectMode::SnapshottedTraced { snapshots: 8 })
        );
        assert_eq!(
            validate_flags(None, true, true),
            Err(FlagError::PruneWithTrace)
        );
        assert_eq!(
            validate_flags(Some(4), true, false),
            Err(FlagError::SnapshotsWithPrune)
        );
        // Snapshots+prune rejection wins even when trace is also on:
        // the user must drop --static-prune first.
        assert_eq!(
            validate_flags(Some(4), true, true),
            Err(FlagError::SnapshotsWithPrune)
        );
    }

    #[test]
    fn zero_snapshots_is_still_the_snapshotted_mode() {
        assert_eq!(
            validate_flags(Some(0), false, false),
            Ok(InjectMode::Snapshotted { snapshots: 0 })
        );
    }

    #[test]
    fn rejections_render_actionable_messages() {
        let e = FlagError::SnapshotsWithPrune.to_string();
        assert!(
            e.contains("--snapshots") && e.contains("--static-prune"),
            "{e}"
        );
        let e = FlagError::PruneWithTrace.to_string();
        assert!(
            e.contains("--static-prune") && e.contains("--trace-propagation"),
            "{e}"
        );
    }
}

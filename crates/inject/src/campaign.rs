//! Program-level statistical FI campaigns.
//!
//! Two runners share one engine: the classic full campaign and the
//! statically-pruned campaign ([`run_campaign_pruned`]). Pruning never
//! changes what a campaign *measures*: each trial's fault is sampled
//! from the same per-trial RNG stream first, and only then — if the
//! sampled `(static instruction, bit)` cell is provably masked per the
//! caller-supplied [`StaticPrune`] table — is the faulty execution
//! skipped and the trial counted Benign. Trials that do run are
//! bit-identical to the full campaign's, so a *sound* prune table makes
//! the pruned outcome counts exactly equal to the full campaign's.

use crate::forkpoint::{fork_point_for, plan_fork_points};
use crate::outcome::{classify, FaultOutcome};
use peppa_ir::{Instr, Module};
use peppa_obs::{Event, NullObserver, Observer, Outcome as ObsOutcome};
use peppa_stats::{binomial_ci, ci::Z_95, BinomialCi, Pcg64};
use peppa_vm::{
    encode_inputs, CompiledModule, Engine, EngineKind, ExecHook, ExecLimits, Injection,
    InjectionTarget, ResumeScratch, RunOutput, TrialResume, Vm,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of one campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of FI trials (the paper uses 1,000 for program-level
    /// measurements).
    pub trials: u32,
    /// Seed for fault-site sampling. Trial `t` uses a stream derived from
    /// `(seed, t)`, so results do not depend on scheduling.
    pub seed: u64,
    /// Hang budget for faulty runs, as a multiple of the golden run's
    /// dynamic instruction count.
    pub hang_factor: u64,
    /// Additional adjacent bits to flip per fault (0 = the paper's
    /// single-bit model; 1 = adjacent double-bit, etc.).
    pub burst: u8,
    /// Number of worker threads; 0 means use all available cores.
    pub threads: usize,
    /// Execution backend trials run on. The engines are observably
    /// bit-identical (see `crates/vm/tests/engine_differential.rs`),
    /// so this is a pure wall-clock knob: outcome counts do not depend
    /// on it.
    pub engine: EngineKind,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 1000,
            seed: 0x5eed,
            hang_factor: 8,
            threads: 0,
            burst: 0,
            engine: EngineKind::Interp,
        }
    }
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    pub trials: u32,
    pub sdc: u32,
    pub crash: u32,
    pub hang: u32,
    pub benign: u32,
    /// 95% Wilson interval on the SDC probability.
    pub sdc_ci: BinomialCi,
    /// Total program executions consumed (trials + the golden run) — the
    /// cost unit used when comparing search budgets with the baseline.
    pub executions: u64,
    /// Dynamic instructions of the golden run.
    pub golden_dynamic: u64,
}

impl CampaignResult {
    /// SDC probability: `P(SDC | fault activated)`. Return-value flips
    /// always activate, so the denominator is the trial count.
    pub fn sdc_prob(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.sdc as f64 / self.trials as f64
    }

    pub fn crash_prob(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.crash as f64 / self.trials as f64
    }
}

/// Per-cell static skip table for `--static-prune` campaigns.
///
/// `cells[sid]` has bit `b` set iff a fault sampled at bit position `b`
/// of static instruction `sid` is provably masked under the burst model
/// the table was built for. The injector deliberately does not depend on
/// `peppa-analysis`; callers build this from a `FaultReach` (see
/// `StaticPrune::from_masks`-style constructors in the bench/CLI
/// layers). Missing sids are never skipped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticPrune {
    pub cells: Vec<u64>,
    /// Burst width the table was computed for; the campaign refuses a
    /// mismatched `CampaignConfig::burst`.
    pub burst: u8,
}

impl StaticPrune {
    /// Whether the sampled `(sid, bit)` cell is provably masked.
    #[inline]
    pub fn is_masked(&self, sid: u32, bit: u32) -> bool {
        bit < 64 && (self.cells.get(sid as usize).copied().unwrap_or(0) >> bit) & 1 != 0
    }

    /// Number of masked cells in the table.
    pub fn masked_cells(&self) -> u64 {
        self.cells.iter().map(|c| c.count_ones() as u64).sum()
    }
}

/// A [`CampaignResult`] plus the pruning bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrunedCampaignResult {
    pub campaign: CampaignResult,
    /// Trials skipped without execution (already counted Benign in
    /// `campaign`).
    pub skipped: u64,
}

impl PrunedCampaignResult {
    /// Fraction of trials that needed no faulty execution.
    pub fn skip_ratio(&self) -> f64 {
        if self.campaign.trials == 0 {
            return 0.0;
        }
        self.skipped as f64 / self.campaign.trials as f64
    }
}

/// Records, for every value-producing dynamic instruction of the golden
/// run, the static instruction it came from — the map a pruned campaign
/// uses to turn a sampled dynamic index into a prune-table sid.
struct SidMapHook {
    sids: Vec<u32>,
}

impl ExecHook for SidMapHook {
    const ENABLED: bool = true;

    #[inline]
    fn def_value(&mut self, ins: &Instr, _bits: u64) {
        self.sids.push(ins.sid.0);
    }
}

/// Errors that stop a campaign before any trial runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The golden run did not exit cleanly; the input is invalid for
    /// resilience measurement (§3.1.2 discards inputs that error out).
    GoldenRunFailed(String),
    /// The program executed no value-producing instructions.
    NoFaultSites,
    /// The [`StaticPrune`] table was built for a different burst width
    /// than the campaign is configured to inject.
    PruneBurstMismatch { table: u8, campaign: u8 },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::GoldenRunFailed(s) => write!(f, "golden run failed: {s}"),
            CampaignError::NoFaultSites => write!(f, "no value-producing dynamic instructions"),
            CampaignError::PruneBurstMismatch { table, campaign } => write!(
                f,
                "static-prune table built for burst {table}, campaign uses burst {campaign}"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Runs the golden execution for `inputs`, checking it is clean.
pub fn golden_run(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
) -> Result<RunOutput, CampaignError> {
    golden_run_on(module, inputs, limits, None)
}

/// [`golden_run`] on the campaign's selected engine (`Some` = the
/// pre-lowered compiled module, `None` = interpreter).
pub(crate) fn golden_run_on(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    code: Option<&CompiledModule>,
) -> Result<RunOutput, CampaignError> {
    let eng = Engine::new(module, limits, code);
    let golden = eng.run_numeric(inputs, None);
    if !golden.status.is_ok() {
        return Err(CampaignError::GoldenRunFailed(format!(
            "{:?}",
            golden.status
        )));
    }
    Ok(golden)
}

/// Samples one fault site uniformly over the golden run's value-producing
/// dynamic instructions.
pub fn sample_fault(rng: &mut Pcg64, value_dynamic: u64) -> Injection {
    sample_fault_burst(rng, value_dynamic, 0)
}

/// Samples a fault site under the multi-bit (burst) model.
pub fn sample_fault_burst(rng: &mut Pcg64, value_dynamic: u64, burst: u8) -> Injection {
    let dyn_index = rng.gen_range_u64(value_dynamic);
    let bit = rng.gen_range_u64(64) as u32;
    Injection {
        target: InjectionTarget::DynamicIndex(dyn_index),
        bit,
        burst,
    }
}

/// Runs a statistical FI campaign for one input.
pub fn run_campaign(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_observed(module, inputs, limits, cfg, &NullObserver)
}

impl From<FaultOutcome> for ObsOutcome {
    fn from(o: FaultOutcome) -> ObsOutcome {
        match o {
            FaultOutcome::Sdc => ObsOutcome::Sdc,
            FaultOutcome::Crash => ObsOutcome::Crash,
            FaultOutcome::Hang => ObsOutcome::Hang,
            FaultOutcome::Benign => ObsOutcome::Benign,
        }
    }
}

/// One trial's observable facts, reported from worker threads to the
/// collector over a bounded channel.
struct TrialReport {
    trial: u32,
    outcome: FaultOutcome,
    site: u64,
    bit: u32,
    latency_ns: u64,
    /// `Some(sid)` if static pruning skipped the faulty execution.
    skipped_sid: Option<u32>,
}

impl TrialReport {
    fn to_event(&self) -> Event {
        Event::TrialFinished {
            trial: self.trial,
            outcome: self.outcome.into(),
            site: self.site,
            bit: self.bit,
            latency_ns: self.latency_ns,
        }
    }

    /// Emits this report's events (a `StaticSkip` first when pruned).
    fn emit(&self, observer: &dyn Observer) {
        if let Some(sid) = self.skipped_sid {
            observer.on_event(&Event::StaticSkip {
                trial: self.trial,
                sid,
                site: self.site,
                bit: self.bit,
            });
        }
        observer.on_event(&self.to_event());
    }
}

/// [`run_campaign`] with an [`Observer`] attached.
///
/// Emitted events: `CampaignStarted`, `GoldenRun`, one `TrialFinished`
/// per trial (in completion order — the `trial` field carries the
/// logical index), and `CampaignFinished` whose counts are the exact
/// counts of the returned [`CampaignResult`].
///
/// Worker threads never call the observer directly: they push
/// [`TrialReport`]s over a bounded channel drained on the calling
/// thread, so sinks see a single-threaded event stream and slow sinks
/// apply back-pressure instead of unbounded buffering. Outcomes are
/// unaffected by observation — trial RNG streams depend only on
/// `(seed, trial)`, so the result is identical to the unobserved runner
/// at every thread count.
pub fn run_campaign_observed(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
    observer: &dyn Observer,
) -> Result<CampaignResult, CampaignError> {
    campaign_impl(module, inputs, limits, cfg, observer, None).map(|r| r.campaign)
}

/// [`run_campaign`] with `ProvablyMasked` fault cells skipped.
///
/// Skipped trials count as Benign (the statically proven outcome) and
/// cost no execution; `executions` reflects only the runs actually
/// performed. Sampling is identical to the full campaign, so with a
/// sound table the outcome counts match [`run_campaign`] exactly —
/// `repro hybrid` checks this, plus FI ground truth on a sample of
/// skipped cells.
pub fn run_campaign_pruned(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
    prune: &StaticPrune,
) -> Result<PrunedCampaignResult, CampaignError> {
    run_campaign_pruned_observed(module, inputs, limits, cfg, prune, &NullObserver)
}

/// [`run_campaign_pruned`] with an [`Observer`] attached. Each skipped
/// trial emits a `StaticSkip` event immediately before its
/// `TrialFinished`.
pub fn run_campaign_pruned_observed(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
    prune: &StaticPrune,
    observer: &dyn Observer,
) -> Result<PrunedCampaignResult, CampaignError> {
    if prune.burst != cfg.burst {
        return Err(CampaignError::PruneBurstMismatch {
            table: prune.burst,
            campaign: cfg.burst,
        });
    }
    campaign_impl(module, inputs, limits, cfg, observer, Some(prune))
}

fn campaign_impl(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
    observer: &dyn Observer,
    prune: Option<&StaticPrune>,
) -> Result<PrunedCampaignResult, CampaignError> {
    let start = Instant::now();
    observer.on_event(&Event::CampaignStarted {
        benchmark: module.name.clone(),
        trials: cfg.trials,
        seed: cfg.seed,
        threads: cfg.threads,
        engine: cfg.engine.as_str().to_string(),
    });

    // Lower once per campaign; workers share the read-only bytecode.
    let code = (cfg.engine == EngineKind::Compiled).then(|| CompiledModule::lower(module));

    // Pruning needs the dynamic-index → sid map of the golden run; the
    // hook does not perturb execution, so the output is the same either
    // way.
    let (golden, sid_map) = if prune.is_some() {
        let eng = Engine::new(module, limits, code.as_ref());
        let bits = encode_inputs(module.entry_func(), inputs);
        let mut hook = SidMapHook { sids: Vec::new() };
        let golden = eng.run_with_hook(&bits, None, &mut hook);
        if !golden.status.is_ok() {
            return Err(CampaignError::GoldenRunFailed(format!(
                "{:?}",
                golden.status
            )));
        }
        (golden, hook.sids)
    } else {
        (
            golden_run_on(module, inputs, limits, code.as_ref())?,
            Vec::new(),
        )
    };
    if golden.profile.value_dynamic == 0 {
        return Err(CampaignError::NoFaultSites);
    }
    observer.on_event(&Event::GoldenRun {
        benchmark: module.name.clone(),
        dynamic: golden.profile.dynamic,
        value_dynamic: golden.profile.value_dynamic,
        coverage: golden.profile.coverage(),
    });

    let faulty_limits = ExecLimits {
        max_dynamic: golden
            .profile
            .dynamic
            .saturating_mul(cfg.hang_factor)
            .saturating_add(10_000),
        ..limits
    };

    debug_assert!(
        prune.is_none() || sid_map.len() as u64 == golden.profile.value_dynamic,
        "sid map must cover every value-producing dynamic instruction"
    );

    let nthreads = effective_threads(cfg.threads, cfg.trials as usize);
    let mut outcomes = vec![FaultOutcome::Benign; cfg.trials as usize];
    let skipped = std::sync::atomic::AtomicU64::new(0);

    let run_trial = |t: u32, scratch: &mut ResumeScratch| -> TrialReport {
        // Per-trial stream independent of scheduling. The fault is
        // sampled before the skip decision, so pruning never changes
        // which fault a trial measures.
        let mut rng = Pcg64::new(cfg.seed ^ (t as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let inj = sample_fault_burst(&mut rng, golden.profile.value_dynamic, cfg.burst);
        let site = match inj.target {
            InjectionTarget::DynamicIndex(k) => k,
            InjectionTarget::StaticInstance { instance, .. } => instance,
        };
        if let Some(p) = prune {
            let sid = sid_map[site as usize];
            if p.is_masked(sid, inj.bit) {
                skipped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return TrialReport {
                    trial: t,
                    outcome: FaultOutcome::Benign,
                    site,
                    bit: inj.bit,
                    latency_ns: 0,
                    skipped_sid: Some(sid),
                };
            }
        }
        let eng = Engine::new(module, faulty_limits, code.as_ref());
        let t0 = Instant::now();
        let faulty = eng.run_numeric_amortized(scratch, inputs, Some(inj));
        let latency_ns = t0.elapsed().as_nanos() as u64;
        TrialReport {
            trial: t,
            outcome: classify(&golden, &faulty),
            site,
            bit: inj.bit,
            latency_ns,
            skipped_sid: None,
        }
    };

    if nthreads <= 1 {
        let mut scratch = ResumeScratch::new();
        for (t, slot) in outcomes.iter_mut().enumerate() {
            let report = run_trial(t as u32, &mut scratch);
            report.emit(observer);
            *slot = report.outcome;
        }
    } else {
        let chunk = outcomes.len().div_ceil(nthreads);
        // Bounded: a slow sink back-pressures workers instead of letting
        // reports pile up without limit.
        let (tx, rx) = std::sync::mpsc::sync_channel::<TrialReport>(1024);
        let collected: Vec<TrialReport> = crossbeam::thread::scope(|s| {
            for (ci, chunk_slice) in outcomes.chunks_mut(chunk).enumerate() {
                let run_trial = &run_trial;
                let tx = tx.clone();
                s.spawn(move |_| {
                    let mut scratch = ResumeScratch::new();
                    for (off, slot) in chunk_slice.iter_mut().enumerate() {
                        let report = run_trial((ci * chunk + off) as u32, &mut scratch);
                        *slot = report.outcome;
                        // The receiver outlives the scope; send only
                        // fails if the collector was dropped, in which
                        // case reporting is moot.
                        let _ = tx.send(report);
                    }
                });
            }
            drop(tx);
            // Drain on the scope's owning thread so the observer sees a
            // single-threaded stream.
            let mut all = Vec::with_capacity(cfg.trials as usize);
            for report in rx.iter() {
                report.emit(observer);
                all.push(report);
            }
            all
        })
        .expect("campaign worker panicked");
        debug_assert_eq!(collected.len(), cfg.trials as usize);
    }

    let mut sdc = 0;
    let mut crash = 0;
    let mut hang = 0;
    let mut benign = 0;
    for o in &outcomes {
        match o {
            FaultOutcome::Sdc => sdc += 1,
            FaultOutcome::Crash => crash += 1,
            FaultOutcome::Hang => hang += 1,
            FaultOutcome::Benign => benign += 1,
        }
    }

    observer.on_event(&Event::CampaignFinished {
        trials: cfg.trials,
        sdc,
        crash,
        hang,
        benign,
        wall_ns: start.elapsed().as_nanos() as u64,
    });
    observer.flush();

    let skipped = skipped.into_inner();
    Ok(PrunedCampaignResult {
        campaign: CampaignResult {
            trials: cfg.trials,
            sdc,
            crash,
            hang,
            benign,
            sdc_ci: binomial_ci(sdc as u64, cfg.trials as u64, Z_95),
            executions: cfg.trials as u64 - skipped + 1,
            golden_dynamic: golden.profile.dynamic,
        },
        skipped,
    })
}

/// Configuration of the snapshot/fork engine of a
/// [`run_campaign_snapshotted`] campaign.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotConfig {
    /// Maximum golden-prefix snapshots to capture (the `--snapshots K`
    /// knob). `0` degenerates to the classic runner: every trial
    /// executes from program entry.
    pub snapshots: u32,
    /// Stop a faulty run early when its machine state becomes
    /// bit-identical to a later golden checkpoint (the continuation is
    /// then pinned to the golden one, so the outcome is decided without
    /// executing the suffix). Purely an optimization — outcomes are
    /// identical either way.
    pub converge_exit: bool,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            snapshots: 16,
            converge_exit: true,
        }
    }
}

/// Bookkeeping of one snapshotted campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Snapshots actually captured (≤ the configured `K`: fork points
    /// dedup when sampled sites repeat).
    pub snapshots: u32,
    /// Total heap bytes across all captured snapshots.
    pub bytes: u64,
    /// Trials resumed from a snapshot.
    pub restores: u64,
    /// Trials executed from program entry (site before the first fork
    /// point, or `snapshots == 0`).
    pub full_runs: u64,
    /// Trials cut short by golden-state convergence.
    pub converged_exits: u64,
    /// Golden-prefix dynamic instructions the resumed trials did not
    /// re-execute — the quantity the speedup comes from.
    pub prefix_instrs_saved: u64,
}

/// A [`CampaignResult`] plus the snapshot engine's accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshottedCampaignResult {
    pub campaign: CampaignResult,
    pub stats: SnapshotStats,
}

/// [`run_campaign`] with the golden prefix amortized across trials.
///
/// Pre-samples every trial's fault (per-trial RNG streams depend only
/// on `(seed, trial)`, so sampling commutes with execution), plans up
/// to `snap.snapshots` stratified fork points over the sampled sites,
/// replays the golden run once capturing a [`peppa_vm::VmSnapshot`] at
/// each, then runs every trial from the latest snapshot preceding its
/// fault site. The interpreter is deterministic and snapshots restore
/// the complete machine state (including the dynamic counters the
/// injection target and hang budget are defined over), so outcome
/// counts are **bit-identical** to [`run_campaign`] under the same
/// `CampaignConfig` — only wall time changes.
pub fn run_campaign_snapshotted(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
    snap: SnapshotConfig,
) -> Result<SnapshottedCampaignResult, CampaignError> {
    run_campaign_snapshotted_observed(module, inputs, limits, cfg, snap, &NullObserver)
}

/// [`run_campaign_snapshotted`] with an [`Observer`] attached.
///
/// Event stream: `CampaignStarted`, `GoldenRun`, one `SnapshotCaptured`
/// per fork point, per-trial `TrialFinished` (completion order), then
/// `SnapshotStats` immediately before the terminal `CampaignFinished`.
pub fn run_campaign_snapshotted_observed(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
    snap: SnapshotConfig,
    observer: &dyn Observer,
) -> Result<SnapshottedCampaignResult, CampaignError> {
    let start = Instant::now();
    observer.on_event(&Event::CampaignStarted {
        benchmark: module.name.clone(),
        trials: cfg.trials,
        seed: cfg.seed,
        threads: cfg.threads,
        engine: cfg.engine.as_str().to_string(),
    });

    // Lower once per campaign; workers share the read-only bytecode.
    let code = (cfg.engine == EngineKind::Compiled).then(|| CompiledModule::lower(module));

    // Plain golden run first: sampling needs the fault-site population
    // before any fork point can be planned.
    let golden = golden_run_on(module, inputs, limits, code.as_ref())?;
    if golden.profile.value_dynamic == 0 {
        return Err(CampaignError::NoFaultSites);
    }
    observer.on_event(&Event::GoldenRun {
        benchmark: module.name.clone(),
        dynamic: golden.profile.dynamic,
        value_dynamic: golden.profile.value_dynamic,
        coverage: golden.profile.coverage(),
    });

    // Pre-sample every trial's fault from the same per-trial streams the
    // classic runner uses — identical faults, identical outcomes.
    let injections: Vec<Injection> = (0..cfg.trials)
        .map(|t| {
            let mut rng = Pcg64::new(cfg.seed ^ (t as u64).wrapping_mul(0x9e3779b97f4a7c15));
            sample_fault_burst(&mut rng, golden.profile.value_dynamic, cfg.burst)
        })
        .collect();
    let sites: Vec<u64> = injections
        .iter()
        .map(|inj| match inj.target {
            InjectionTarget::DynamicIndex(k) => k,
            InjectionTarget::StaticInstance { instance, .. } => instance,
        })
        .collect();

    // Capture run: replay the golden execution once, freezing the
    // machine at each planned fork point.
    let points = plan_fork_points(&sites, snap.snapshots);
    let bits = encode_inputs(module.entry_func(), inputs);
    let (snaps, read_sets) = if points.is_empty() {
        (Vec::new(), None)
    } else {
        let vm = Vm::new(module, limits);
        // Convergence additionally needs each checkpoint's future read
        // set, derived from the capture run's memory-access trace; a
        // prefix-skip-only campaign uses the cheaper plain capture.
        let (replay, snaps, read_sets) = if snap.converge_exit {
            let (replay, snaps, rs) = vm.run_with_snapshots_read_sets(&bits, &points);
            (replay, snaps, Some(rs))
        } else {
            let (replay, snaps) = vm.run_with_snapshots(&bits, &points);
            (replay, snaps, None)
        };
        debug_assert!(replay.status.is_ok());
        debug_assert_eq!(replay.output, golden.output);
        debug_assert_eq!(
            snaps.len(),
            points.len(),
            "every fork point precedes a sampled site, so all are reached"
        );
        (snaps, read_sets)
    };
    let snap_bytes: u64 = snaps.iter().map(|s| s.bytes()).sum();
    for (i, s) in snaps.iter().enumerate() {
        observer.on_event(&Event::SnapshotCaptured {
            index: i as u32,
            value_dynamic: s.value_dynamic(),
            dynamic: s.dynamic(),
            bytes: s.bytes(),
        });
    }

    let faulty_limits = ExecLimits {
        max_dynamic: golden
            .profile
            .dynamic
            .saturating_mul(cfg.hang_factor)
            .saturating_add(10_000),
        ..limits
    };

    use std::sync::atomic::{AtomicU64, Ordering};
    let restores = AtomicU64::new(0);
    let full_runs = AtomicU64::new(0);
    let converged_exits = AtomicU64::new(0);
    let prefix_saved = AtomicU64::new(0);

    // Static live-register masks widen the convergence check: a benign
    // fault parked in a dead register would otherwise keep the register
    // file unequal forever and force the whole suffix to execute.
    let masks =
        (snap.converge_exit && !snaps.is_empty()).then(|| peppa_analysis::converge_masks(module));

    let run_trial = |t: u32, scratch: &mut ResumeScratch| -> TrialReport {
        let inj = injections[t as usize];
        let site = sites[t as usize];
        let eng = Engine::new(module, faulty_limits, code.as_ref());
        let t0 = Instant::now();
        let outcome = match fork_point_for(&points, site) {
            None => {
                full_runs.fetch_add(1, Ordering::Relaxed);
                classify(&golden, &eng.run(&bits, Some(inj)))
            }
            Some(i) => {
                restores.fetch_add(1, Ordering::Relaxed);
                prefix_saved.fetch_add(snaps[i].dynamic(), Ordering::Relaxed);
                let later: &[peppa_vm::VmSnapshot] = if snap.converge_exit {
                    &snaps[i + 1..]
                } else {
                    &[]
                };
                match eng.resume_trial_amortized(
                    scratch,
                    &snaps[i],
                    Some(inj),
                    later,
                    masks.as_ref(),
                    read_sets.as_ref(),
                ) {
                    TrialResume::Completed(faulty) => classify(&golden, &faulty),
                    TrialResume::Converged {
                        checkpoint_dynamic,
                        dynamic_at_exit,
                        output_matches,
                        ..
                    } => {
                        converged_exits.fetch_add(1, Ordering::Relaxed);
                        // The continuation from the matched checkpoint is
                        // exactly the golden continuation. Project the
                        // final dynamic count so the hang budget stays
                        // bit-exact with the full execution (the VM hangs
                        // when `dynamic > max_dynamic`).
                        let projected = dynamic_at_exit
                            .saturating_add(golden.profile.dynamic - checkpoint_dynamic);
                        if projected > faulty_limits.max_dynamic {
                            FaultOutcome::Hang
                        } else if output_matches {
                            FaultOutcome::Benign
                        } else {
                            FaultOutcome::Sdc
                        }
                    }
                }
            }
        };
        TrialReport {
            trial: t,
            outcome,
            site,
            bit: inj.bit,
            latency_ns: t0.elapsed().as_nanos() as u64,
            skipped_sid: None,
        }
    };

    let nthreads = effective_threads(cfg.threads, cfg.trials as usize);
    let mut outcomes = vec![FaultOutcome::Benign; cfg.trials as usize];
    if nthreads <= 1 {
        let mut scratch = ResumeScratch::new();
        for (t, slot) in outcomes.iter_mut().enumerate() {
            let report = run_trial(t as u32, &mut scratch);
            report.emit(observer);
            *slot = report.outcome;
        }
    } else {
        let chunk = outcomes.len().div_ceil(nthreads);
        let (tx, rx) = std::sync::mpsc::sync_channel::<TrialReport>(1024);
        crossbeam::thread::scope(|s| {
            for (ci, chunk_slice) in outcomes.chunks_mut(chunk).enumerate() {
                let run_trial = &run_trial;
                let tx = tx.clone();
                s.spawn(move |_| {
                    let mut scratch = ResumeScratch::new();
                    for (off, slot) in chunk_slice.iter_mut().enumerate() {
                        let report = run_trial((ci * chunk + off) as u32, &mut scratch);
                        *slot = report.outcome;
                        // The receiver outlives the scope; send only
                        // fails if the collector was dropped, in which
                        // case reporting is moot.
                        let _ = tx.send(report);
                    }
                });
            }
            drop(tx);
            // Drain on the scope's owning thread so the observer sees a
            // single-threaded event stream.
            for report in rx.iter() {
                report.emit(observer);
            }
        })
        .expect("snapshotted campaign worker panicked");
    }

    let mut sdc = 0;
    let mut crash = 0;
    let mut hang = 0;
    let mut benign = 0;
    for o in &outcomes {
        match o {
            FaultOutcome::Sdc => sdc += 1,
            FaultOutcome::Crash => crash += 1,
            FaultOutcome::Hang => hang += 1,
            FaultOutcome::Benign => benign += 1,
        }
    }

    let stats = SnapshotStats {
        snapshots: snaps.len() as u32,
        bytes: snap_bytes,
        restores: restores.into_inner(),
        full_runs: full_runs.into_inner(),
        converged_exits: converged_exits.into_inner(),
        prefix_instrs_saved: prefix_saved.into_inner(),
    };
    observer.on_event(&Event::SnapshotStats {
        snapshots: stats.snapshots,
        bytes: stats.bytes,
        restores: stats.restores,
        full_runs: stats.full_runs,
        converged_exits: stats.converged_exits,
        prefix_instrs_saved: stats.prefix_instrs_saved,
    });
    observer.on_event(&Event::CampaignFinished {
        trials: cfg.trials,
        sdc,
        crash,
        hang,
        benign,
        wall_ns: start.elapsed().as_nanos() as u64,
    });
    observer.flush();

    Ok(SnapshottedCampaignResult {
        campaign: CampaignResult {
            trials: cfg.trials,
            sdc,
            crash,
            hang,
            benign,
            sdc_ci: binomial_ci(sdc as u64, cfg.trials as u64, Z_95),
            // Same accounting as the classic runner: each trial measures
            // one (partial) program execution, plus the golden run.
            executions: cfg.trials as u64 + 1,
            golden_dynamic: golden.profile.dynamic,
        },
        stats,
    })
}

/// Threshold policy for [`run_campaign_pruned_gated`]: pruning engages
/// whenever the predicted skip ratio *exceeds* the threshold.
///
/// The default threshold is 0: any table predicting a nonzero skip
/// ratio engages. The sid-map bookkeeping the gate once guarded against
/// is O(1) per trial and far cheaper than even a fraction of a percent
/// of skipped executions; the gate's remaining job is to keep empty
/// tables (ratio exactly 0, e.g. hpccg's honestly all-live space) on
/// the classic unpruned path.
#[derive(Debug, Clone, Copy)]
pub struct PruneGate {
    /// Predicted skip ratio must be strictly greater than this for
    /// pruning to engage.
    pub min_skip_ratio: f64,
}

impl Default for PruneGate {
    fn default() -> Self {
        PruneGate {
            min_skip_ratio: 0.0,
        }
    }
}

/// What a gated pruned campaign decided, and why.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PruneDecision {
    /// Whether pruning actually engaged.
    pub applied: bool,
    /// Masked `(sid, bit)` cells in the supplied table.
    pub masked_cells: u64,
    /// Predicted fraction of trials the table would skip (0 when the
    /// table is empty and prediction was short-circuited).
    pub predicted_skip_ratio: f64,
    /// The gate's `min_skip_ratio`.
    pub threshold: f64,
}

/// A [`PrunedCampaignResult`] plus the gate's decision record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatedPrunedCampaignResult {
    pub result: PrunedCampaignResult,
    pub decision: PruneDecision,
}

impl StaticPrune {
    /// Predicted fraction of uniformly sampled `(dynamic site, bit)`
    /// faults this table skips, given the golden run's per-sid
    /// execution counts: `Σ exec_counts[sid] · popcount(cells[sid]) /
    /// (value_dynamic · 64)`. Exact for sound tables (masked cells only
    /// cover value-producing instructions, whose execution count equals
    /// their dynamic value instance count).
    pub fn predicted_skip_ratio(&self, exec_counts: &[u64], value_dynamic: u64) -> f64 {
        if value_dynamic == 0 {
            return 0.0;
        }
        let masked: f64 = exec_counts
            .iter()
            .zip(&self.cells)
            .map(|(&n, &c)| n as f64 * c.count_ones() as f64)
            .sum();
        masked / (value_dynamic as f64 * 64.0)
    }
}

/// [`run_campaign_pruned`] behind a cost gate: pruning engages whenever
/// the table predicts strictly more than `gate.min_skip_ratio` of
/// trials skip (any nonzero prediction under the default). At or below
/// the threshold, the campaign runs the classic unpruned path and
/// reports why.
///
/// Outcome counts are identical whichever way the gate decides — a
/// disengaged gate only stops trials from being *skipped*, and skipped
/// trials are Benign by proof.
pub fn run_campaign_pruned_gated(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
    prune: &StaticPrune,
    gate: PruneGate,
) -> Result<GatedPrunedCampaignResult, CampaignError> {
    run_campaign_pruned_gated_observed(module, inputs, limits, cfg, prune, gate, &NullObserver)
}

/// [`run_campaign_pruned_gated`] with an [`Observer`] attached. The
/// decision is announced as an `Event::Message` before the campaign
/// starts.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_pruned_gated_observed(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
    prune: &StaticPrune,
    gate: PruneGate,
    observer: &dyn Observer,
) -> Result<GatedPrunedCampaignResult, CampaignError> {
    if prune.burst != cfg.burst {
        return Err(CampaignError::PruneBurstMismatch {
            table: prune.burst,
            campaign: cfg.burst,
        });
    }
    let masked_cells = prune.masked_cells();
    // Prediction needs the golden profile; an empty table needs nothing.
    let predicted_skip_ratio = if masked_cells == 0 {
        0.0
    } else {
        let golden = golden_run(module, inputs, limits)?;
        prune.predicted_skip_ratio(&golden.profile.exec_counts, golden.profile.value_dynamic)
    };
    let applied = predicted_skip_ratio > gate.min_skip_ratio;
    let decision = PruneDecision {
        applied,
        masked_cells,
        predicted_skip_ratio,
        threshold: gate.min_skip_ratio,
    };
    observer.on_event(&Event::Message {
        text: format!(
            "prune gate: {} (masked cells {}, predicted skip {:.2}% {} threshold {:.2}%)",
            if applied { "engaged" } else { "disengaged" },
            masked_cells,
            predicted_skip_ratio * 100.0,
            if applied { ">=" } else { "<" },
            gate.min_skip_ratio * 100.0
        ),
    });
    let result = campaign_impl(
        module,
        inputs,
        limits,
        cfg,
        observer,
        applied.then_some(prune),
    )?;
    Ok(GatedPrunedCampaignResult { result, decision })
}

pub(crate) fn effective_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n = if requested == 0 { hw } else { requested };
    n.clamp(1, work_items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A kernel where faults visibly matter: accumulates a function of
    /// the input and outputs the sum plus a guard value.
    const SRC: &str = r#"
        global float buf[64];
        fn main(n: int, s: float) {
            for (i = 0; i < n; i = i + 1) {
                buf[i] = s * i2f(i) + 1.0;
            }
            let acc = 0.0;
            for (i = 0; i < n; i = i + 1) {
                acc = acc + buf[i] * buf[i];
            }
            output acc;
        }
    "#;

    fn module() -> Module {
        peppa_lang::compile(SRC, "camp").unwrap()
    }

    #[test]
    fn campaign_counts_sum_to_trials() {
        let m = module();
        let cfg = CampaignConfig {
            trials: 200,
            seed: 1,
            ..Default::default()
        };
        let r = run_campaign(&m, &[16.0, 0.5], ExecLimits::default(), cfg).unwrap();
        assert_eq!(r.sdc + r.crash + r.hang + r.benign, r.trials);
        assert!(r.sdc > 0, "expected some SDCs, got {r:?}");
        assert_eq!(r.executions, 201);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let m = module();
        let base = CampaignConfig {
            trials: 120,
            seed: 77,
            hang_factor: 8,
            threads: 1,
            burst: 0,
            engine: EngineKind::Interp,
        };
        let a = run_campaign(&m, &[12.0, 0.25], ExecLimits::default(), base).unwrap();
        let b = run_campaign(
            &m,
            &[12.0, 0.25],
            ExecLimits::default(),
            CampaignConfig { threads: 4, ..base },
        )
        .unwrap();
        assert_eq!(
            (a.sdc, a.crash, a.hang, a.benign),
            (b.sdc, b.crash, b.hang, b.benign)
        );
    }

    #[test]
    fn different_seeds_vary() {
        let m = module();
        let mk = |seed| CampaignConfig {
            trials: 150,
            seed,
            ..Default::default()
        };
        let a = run_campaign(&m, &[16.0, 0.5], ExecLimits::default(), mk(1)).unwrap();
        let b = run_campaign(&m, &[16.0, 0.5], ExecLimits::default(), mk(2)).unwrap();
        // Same distribution, different sample: exact tie across all four
        // counters is very unlikely.
        assert!(
            (a.sdc, a.crash, a.hang, a.benign) != (b.sdc, b.crash, b.hang, b.benign),
            "two seeds produced identical outcome vectors"
        );
    }

    #[test]
    fn golden_failure_rejected() {
        // x = 0 divides by zero in the golden run, so the input is
        // rejected before any trial.
        let m = peppa_lang::compile("fn main(x: int) { output 100 / x; }", "div").unwrap();
        let e = run_campaign(&m, &[0.0], ExecLimits::default(), Default::default());
        assert!(matches!(e, Err(CampaignError::GoldenRunFailed(_))));
        // A clean divisor works.
        let ok = run_campaign(
            &m,
            &[5.0],
            ExecLimits::default(),
            CampaignConfig {
                trials: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(ok.trials, 50);
    }

    /// Collects every event for post-hoc assertions.
    struct Collecting(std::sync::Mutex<Vec<Event>>);

    impl Observer for Collecting {
        fn on_event(&self, event: &Event) {
            self.0.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn observed_campaign_emits_one_event_per_trial() {
        let m = module();
        let cfg = CampaignConfig {
            trials: 90,
            seed: 3,
            threads: 4,
            ..Default::default()
        };
        let obs = Collecting(std::sync::Mutex::new(Vec::new()));
        let r = run_campaign_observed(&m, &[16.0, 0.5], ExecLimits::default(), cfg, &obs).unwrap();
        let events = obs.0.into_inner().unwrap();

        let trials: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind() == "trial_finished")
            .collect();
        assert_eq!(trials.len(), cfg.trials as usize);
        // Every logical trial index appears exactly once, whatever the
        // completion order was.
        let mut seen: Vec<u32> = trials
            .iter()
            .map(|e| match e {
                Event::TrialFinished { trial, .. } => *trial,
                _ => unreachable!(),
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..cfg.trials).collect::<Vec<_>>());

        // The terminal event's counts match the returned result.
        match events.last().unwrap() {
            Event::CampaignFinished {
                trials,
                sdc,
                crash,
                hang,
                benign,
                ..
            } => {
                assert_eq!(
                    (*trials, *sdc, *crash, *hang, *benign),
                    (r.trials, r.sdc, r.crash, r.hang, r.benign)
                );
            }
            other => panic!("last event was {other:?}"),
        }
        assert_eq!(events[0].kind(), "campaign_started");
        assert_eq!(events[1].kind(), "golden_run");
    }

    #[test]
    fn observed_result_identical_across_thread_counts() {
        let m = module();
        let base = CampaignConfig {
            trials: 96,
            seed: 41,
            hang_factor: 8,
            threads: 1,
            burst: 0,
            engine: EngineKind::Interp,
        };
        let obs = Collecting(std::sync::Mutex::new(Vec::new()));
        let a =
            run_campaign_observed(&m, &[14.0, 0.75], ExecLimits::default(), base, &obs).unwrap();
        let b = run_campaign_observed(
            &m,
            &[14.0, 0.75],
            ExecLimits::default(),
            CampaignConfig { threads: 4, ..base },
            &obs,
        )
        .unwrap();
        assert_eq!(
            (a.sdc, a.crash, a.hang, a.benign),
            (b.sdc, b.crash, b.hang, b.benign)
        );
        // And observation does not perturb the unobserved runner either.
        let c = run_campaign(&m, &[14.0, 0.75], ExecLimits::default(), base).unwrap();
        assert_eq!(
            (a.sdc, a.crash, a.hang, a.benign),
            (c.sdc, c.crash, c.hang, c.benign)
        );
    }

    #[test]
    fn metrics_outcome_counters_match_result() {
        let m = module();
        let cfg = CampaignConfig {
            trials: 80,
            seed: 9,
            ..Default::default()
        };
        let reg = peppa_obs::MetricsRegistry::new();
        let r = run_campaign_observed(&m, &[16.0, 0.5], ExecLimits::default(), cfg, &reg).unwrap();
        assert_eq!(reg.counter_value("campaign.outcome.sdc"), r.sdc as u64);
        assert_eq!(reg.counter_value("campaign.outcome.crash"), r.crash as u64);
        assert_eq!(reg.counter_value("campaign.outcome.hang"), r.hang as u64);
        assert_eq!(
            reg.counter_value("campaign.outcome.benign"),
            r.benign as u64
        );
        assert_eq!(
            reg.counter_value("campaign.trials.finished"),
            r.trials as u64
        );
    }

    #[test]
    fn journal_has_one_line_per_trial() {
        let m = module();
        let cfg = CampaignConfig {
            trials: 40,
            seed: 12,
            threads: 2,
            ..Default::default()
        };
        let path = std::env::temp_dir().join(format!(
            "peppa-campaign-journal-{}.jsonl",
            std::process::id()
        ));
        {
            let j = peppa_obs::JsonlJournal::create(&path).unwrap();
            run_campaign_observed(&m, &[16.0, 0.5], ExecLimits::default(), cfg, &j).unwrap();
        }
        let events = peppa_obs::JsonlJournal::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let trial_lines = events
            .iter()
            .filter(|e| e.kind() == "trial_finished")
            .count();
        assert_eq!(trial_lines, cfg.trials as usize);
    }

    #[test]
    fn pruned_campaign_with_empty_table_matches_full_exactly() {
        let m = module();
        let cfg = CampaignConfig {
            trials: 120,
            seed: 21,
            threads: 2,
            ..Default::default()
        };
        let full = run_campaign(&m, &[16.0, 0.5], ExecLimits::default(), cfg).unwrap();
        let none = StaticPrune {
            cells: vec![0; m.num_instrs],
            burst: 0,
        };
        let pruned =
            run_campaign_pruned(&m, &[16.0, 0.5], ExecLimits::default(), cfg, &none).unwrap();
        assert_eq!(pruned.skipped, 0);
        assert_eq!(
            (full.sdc, full.crash, full.hang, full.benign),
            (
                pruned.campaign.sdc,
                pruned.campaign.crash,
                pruned.campaign.hang,
                pruned.campaign.benign
            )
        );
        assert_eq!(pruned.campaign.executions, full.executions);
    }

    #[test]
    fn fully_masked_table_skips_every_trial() {
        let m = module();
        let cfg = CampaignConfig {
            trials: 60,
            seed: 4,
            threads: 3,
            ..Default::default()
        };
        let all = StaticPrune {
            cells: vec![u64::MAX; m.num_instrs],
            burst: 0,
        };
        let obs = Collecting(std::sync::Mutex::new(Vec::new()));
        let r =
            run_campaign_pruned_observed(&m, &[16.0, 0.5], ExecLimits::default(), cfg, &all, &obs)
                .unwrap();
        assert_eq!(r.skipped, 60);
        assert_eq!(r.skip_ratio(), 1.0);
        assert_eq!(r.campaign.benign, 60);
        // No faulty executions: only the golden run was paid for.
        assert_eq!(r.campaign.executions, 1);

        let events = obs.0.into_inner().unwrap();
        let skips = events.iter().filter(|e| e.kind() == "static_skip").count();
        let trials = events
            .iter()
            .filter(|e| e.kind() == "trial_finished")
            .count();
        assert_eq!(skips, 60, "one StaticSkip per skipped trial");
        assert_eq!(trials, 60, "TrialFinished still fires for every trial");
    }

    #[test]
    fn prune_burst_mismatch_is_rejected() {
        let m = module();
        let table = StaticPrune {
            cells: vec![0; m.num_instrs],
            burst: 1,
        };
        let e = run_campaign_pruned(
            &m,
            &[16.0, 0.5],
            ExecLimits::default(),
            CampaignConfig::default(),
            &table,
        );
        assert!(matches!(
            e,
            Err(CampaignError::PruneBurstMismatch {
                table: 1,
                campaign: 0
            })
        ));
    }

    #[test]
    fn pruned_campaign_deterministic_across_thread_counts() {
        let m = module();
        // Mask a slice of cells so some trials skip and some run.
        let mut cells = vec![0u64; m.num_instrs];
        for (i, c) in cells.iter_mut().enumerate() {
            if i % 3 == 0 {
                *c = 0x00FF_FF00_0000_FF00;
            }
        }
        let table = StaticPrune { cells, burst: 0 };
        let base = CampaignConfig {
            trials: 90,
            seed: 17,
            hang_factor: 8,
            threads: 1,
            burst: 0,
            engine: EngineKind::Interp,
        };
        let a =
            run_campaign_pruned(&m, &[12.0, 0.25], ExecLimits::default(), base, &table).unwrap();
        let b = run_campaign_pruned(
            &m,
            &[12.0, 0.25],
            ExecLimits::default(),
            CampaignConfig { threads: 4, ..base },
            &table,
        )
        .unwrap();
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(
            (
                a.campaign.sdc,
                a.campaign.crash,
                a.campaign.hang,
                a.campaign.benign
            ),
            (
                b.campaign.sdc,
                b.campaign.crash,
                b.campaign.hang,
                b.campaign.benign
            )
        );
    }

    #[test]
    fn snapshotted_campaign_bit_identical_to_full() {
        let m = module();
        let cfg = CampaignConfig {
            trials: 150,
            seed: 33,
            hang_factor: 8,
            threads: 1,
            burst: 0,
            engine: EngineKind::Interp,
        };
        let full = run_campaign(&m, &[16.0, 0.5], ExecLimits::default(), cfg).unwrap();
        for k in [0, 1, 8, 64] {
            for threads in [1, 4] {
                for converge_exit in [false, true] {
                    let r = run_campaign_snapshotted(
                        &m,
                        &[16.0, 0.5],
                        ExecLimits::default(),
                        CampaignConfig { threads, ..cfg },
                        SnapshotConfig {
                            snapshots: k,
                            converge_exit,
                        },
                    )
                    .unwrap();
                    assert_eq!(
                        (full.sdc, full.crash, full.hang, full.benign),
                        (
                            r.campaign.sdc,
                            r.campaign.crash,
                            r.campaign.hang,
                            r.campaign.benign
                        ),
                        "k={k} threads={threads} converge_exit={converge_exit}"
                    );
                    assert_eq!(r.campaign.executions, full.executions);
                    assert_eq!(r.campaign.golden_dynamic, full.golden_dynamic);
                    assert_eq!(
                        r.stats.restores + r.stats.full_runs,
                        cfg.trials as u64,
                        "every trial either restores or runs from entry"
                    );
                    if k == 0 {
                        assert_eq!(r.stats.snapshots, 0);
                        assert_eq!(r.stats.full_runs, cfg.trials as u64);
                    } else {
                        assert!(r.stats.snapshots >= 1 && r.stats.snapshots <= k);
                        assert!(r.stats.bytes > 0);
                        assert!(r.stats.restores > 0, "k={k}: some trial must restore");
                        if k > 1 {
                            // With one fork point at the earliest sampled
                            // site the prefix can legitimately be empty
                            // (site 0 ⇒ snapshot at dynamic 0); with more
                            // points the later ones must save something.
                            assert!(r.stats.prefix_instrs_saved > 0, "k={k}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn snapshotted_campaign_emits_capture_and_stats_events() {
        let m = module();
        let cfg = CampaignConfig {
            trials: 60,
            seed: 8,
            threads: 2,
            ..Default::default()
        };
        let obs = Collecting(std::sync::Mutex::new(Vec::new()));
        let r = run_campaign_snapshotted_observed(
            &m,
            &[16.0, 0.5],
            ExecLimits::default(),
            cfg,
            SnapshotConfig::default(),
            &obs,
        )
        .unwrap();
        let events = obs.0.into_inner().unwrap();
        let captures = events
            .iter()
            .filter(|e| e.kind() == "snapshot_captured")
            .count();
        assert_eq!(captures as u32, r.stats.snapshots);
        // SnapshotStats is the penultimate event, right before
        // CampaignFinished, and its counts match the result.
        match &events[events.len() - 2] {
            Event::SnapshotStats {
                snapshots,
                restores,
                full_runs,
                prefix_instrs_saved,
                ..
            } => {
                assert_eq!(*snapshots, r.stats.snapshots);
                assert_eq!(*restores, r.stats.restores);
                assert_eq!(*full_runs, r.stats.full_runs);
                assert_eq!(*prefix_instrs_saved, r.stats.prefix_instrs_saved);
            }
            other => panic!("expected SnapshotStats before CampaignFinished, got {other:?}"),
        }
        assert_eq!(events.last().unwrap().kind(), "campaign_finished");
        let trial_events = events
            .iter()
            .filter(|e| e.kind() == "trial_finished")
            .count();
        assert_eq!(trial_events, cfg.trials as usize);
    }

    #[test]
    fn predicted_skip_ratio_matches_table_extremes() {
        let m = module();
        let golden = golden_run(&m, &[16.0, 0.5], ExecLimits::default()).unwrap();
        let empty = StaticPrune {
            cells: vec![0; m.num_instrs],
            burst: 0,
        };
        assert_eq!(
            empty.predicted_skip_ratio(&golden.profile.exec_counts, golden.profile.value_dynamic),
            0.0
        );
        let all = StaticPrune {
            cells: vec![u64::MAX; m.num_instrs],
            burst: 0,
        };
        // Every value-producing cell masked predicts ≥ 100% skip (the
        // estimate also counts non-value instructions, so it can only
        // overshoot, never undershoot).
        assert!(
            all.predicted_skip_ratio(&golden.profile.exec_counts, golden.profile.value_dynamic)
                >= 1.0
        );
    }

    #[test]
    fn prune_gate_disengages_on_empty_table_and_engages_on_full() {
        let m = module();
        let cfg = CampaignConfig {
            trials: 80,
            seed: 19,
            threads: 2,
            ..Default::default()
        };
        let empty = StaticPrune {
            cells: vec![0; m.num_instrs],
            burst: 0,
        };
        let g = run_campaign_pruned_gated(
            &m,
            &[16.0, 0.5],
            ExecLimits::default(),
            cfg,
            &empty,
            PruneGate::default(),
        )
        .unwrap();
        assert!(!g.decision.applied);
        assert_eq!(g.decision.masked_cells, 0);
        assert_eq!(g.decision.predicted_skip_ratio, 0.0);
        assert_eq!(g.result.skipped, 0);
        // Disengaged gate still measures the same campaign.
        let full = run_campaign(&m, &[16.0, 0.5], ExecLimits::default(), cfg).unwrap();
        assert_eq!(
            (full.sdc, full.crash, full.hang, full.benign),
            (
                g.result.campaign.sdc,
                g.result.campaign.crash,
                g.result.campaign.hang,
                g.result.campaign.benign
            )
        );

        let all = StaticPrune {
            cells: vec![u64::MAX; m.num_instrs],
            burst: 0,
        };
        let g = run_campaign_pruned_gated(
            &m,
            &[16.0, 0.5],
            ExecLimits::default(),
            cfg,
            &all,
            PruneGate::default(),
        )
        .unwrap();
        assert!(g.decision.applied);
        assert!(g.decision.predicted_skip_ratio >= 1.0);
        assert_eq!(g.result.skipped, cfg.trials as u64);

        // An unreachable threshold disengages even a full table.
        let g = run_campaign_pruned_gated(
            &m,
            &[16.0, 0.5],
            ExecLimits::default(),
            cfg,
            &all,
            PruneGate {
                min_skip_ratio: 1e9,
            },
        )
        .unwrap();
        assert!(!g.decision.applied);
        assert_eq!(g.result.skipped, 0);
    }

    #[test]
    fn prune_gate_rejects_burst_mismatch() {
        let m = module();
        let table = StaticPrune {
            cells: vec![0; m.num_instrs],
            burst: 2,
        };
        let e = run_campaign_pruned_gated(
            &m,
            &[16.0, 0.5],
            ExecLimits::default(),
            CampaignConfig::default(),
            &table,
            PruneGate::default(),
        );
        assert!(matches!(
            e,
            Err(CampaignError::PruneBurstMismatch {
                table: 2,
                campaign: 0
            })
        ));
    }

    #[test]
    fn campaign_outcomes_identical_across_engines() {
        let m = module();
        let base = CampaignConfig {
            trials: 150,
            seed: 2021,
            hang_factor: 8,
            threads: 2,
            burst: 0,
            engine: EngineKind::Interp,
        };
        let interp = run_campaign(&m, &[16.0, 0.5], ExecLimits::default(), base).unwrap();
        let compiled = run_campaign(
            &m,
            &[16.0, 0.5],
            ExecLimits::default(),
            CampaignConfig {
                engine: EngineKind::Compiled,
                ..base
            },
        )
        .unwrap();
        assert_eq!(
            (interp.sdc, interp.crash, interp.hang, interp.benign),
            (compiled.sdc, compiled.crash, compiled.hang, compiled.benign),
            "engines sampled identical faults but classified them differently"
        );
        assert_eq!(interp.golden_dynamic, compiled.golden_dynamic);

        // `--engine compiled` composes with `--snapshots K`: fork points
        // land on the same value-dynamic boundaries in both backends.
        for k in [0, 8] {
            let r = run_campaign_snapshotted(
                &m,
                &[16.0, 0.5],
                ExecLimits::default(),
                CampaignConfig {
                    engine: EngineKind::Compiled,
                    ..base
                },
                SnapshotConfig {
                    snapshots: k,
                    converge_exit: true,
                },
            )
            .unwrap();
            assert_eq!(
                (interp.sdc, interp.crash, interp.hang, interp.benign),
                (
                    r.campaign.sdc,
                    r.campaign.crash,
                    r.campaign.hang,
                    r.campaign.benign
                ),
                "compiled engine with --snapshots {k} diverged from interpreter"
            );
            if k > 0 {
                assert!(r.stats.restores > 0, "k={k}: some trial must restore");
            }
        }
    }

    #[test]
    fn campaign_started_event_carries_engine_tag() {
        let m = module();
        for engine in [EngineKind::Interp, EngineKind::Compiled] {
            let cfg = CampaignConfig {
                trials: 20,
                seed: 6,
                threads: 1,
                engine,
                ..Default::default()
            };
            let obs = Collecting(std::sync::Mutex::new(Vec::new()));
            run_campaign_observed(&m, &[16.0, 0.5], ExecLimits::default(), cfg, &obs).unwrap();
            let events = obs.0.into_inner().unwrap();
            match &events[0] {
                Event::CampaignStarted { engine: e, .. } => assert_eq!(e, engine.as_str()),
                other => panic!("first event was {other:?}"),
            }
        }
    }

    #[test]
    fn sdc_probability_and_ci_consistent() {
        let m = module();
        let cfg = CampaignConfig {
            trials: 300,
            seed: 5,
            ..Default::default()
        };
        let r = run_campaign(&m, &[20.0, 1.5], ExecLimits::default(), cfg).unwrap();
        let p = r.sdc_prob();
        assert!(r.sdc_ci.lo <= p && p <= r.sdc_ci.hi);
    }
}

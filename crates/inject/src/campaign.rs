//! Program-level statistical FI campaigns.

use crate::outcome::{classify, FaultOutcome};
use peppa_ir::Module;
use peppa_stats::{binomial_ci, ci::Z_95, BinomialCi, Pcg64};
use peppa_vm::{ExecLimits, Injection, InjectionTarget, RunOutput, Vm};
use serde::{Deserialize, Serialize};

/// Configuration of one campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of FI trials (the paper uses 1,000 for program-level
    /// measurements).
    pub trials: u32,
    /// Seed for fault-site sampling. Trial `t` uses a stream derived from
    /// `(seed, t)`, so results do not depend on scheduling.
    pub seed: u64,
    /// Hang budget for faulty runs, as a multiple of the golden run's
    /// dynamic instruction count.
    pub hang_factor: u64,
    /// Additional adjacent bits to flip per fault (0 = the paper's
    /// single-bit model; 1 = adjacent double-bit, etc.).
    pub burst: u8,
    /// Number of worker threads; 0 means use all available cores.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { trials: 1000, seed: 0x5eed, hang_factor: 8, threads: 0, burst: 0 }
    }
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    pub trials: u32,
    pub sdc: u32,
    pub crash: u32,
    pub hang: u32,
    pub benign: u32,
    /// 95% Wilson interval on the SDC probability.
    pub sdc_ci: BinomialCi,
    /// Total program executions consumed (trials + the golden run) — the
    /// cost unit used when comparing search budgets with the baseline.
    pub executions: u64,
    /// Dynamic instructions of the golden run.
    pub golden_dynamic: u64,
}

impl CampaignResult {
    /// SDC probability: `P(SDC | fault activated)`. Return-value flips
    /// always activate, so the denominator is the trial count.
    pub fn sdc_prob(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.sdc as f64 / self.trials as f64
    }

    pub fn crash_prob(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.crash as f64 / self.trials as f64
    }
}

/// Errors that stop a campaign before any trial runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The golden run did not exit cleanly; the input is invalid for
    /// resilience measurement (§3.1.2 discards inputs that error out).
    GoldenRunFailed(String),
    /// The program executed no value-producing instructions.
    NoFaultSites,
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::GoldenRunFailed(s) => write!(f, "golden run failed: {s}"),
            CampaignError::NoFaultSites => write!(f, "no value-producing dynamic instructions"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Runs the golden execution for `inputs`, checking it is clean.
pub fn golden_run(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
) -> Result<RunOutput, CampaignError> {
    let vm = Vm::new(module, limits);
    let golden = vm.run_numeric(inputs, None);
    if !golden.status.is_ok() {
        return Err(CampaignError::GoldenRunFailed(format!("{:?}", golden.status)));
    }
    Ok(golden)
}

/// Samples one fault site uniformly over the golden run's value-producing
/// dynamic instructions.
pub fn sample_fault(rng: &mut Pcg64, value_dynamic: u64) -> Injection {
    sample_fault_burst(rng, value_dynamic, 0)
}

/// Samples a fault site under the multi-bit (burst) model.
pub fn sample_fault_burst(rng: &mut Pcg64, value_dynamic: u64, burst: u8) -> Injection {
    let dyn_index = rng.gen_range_u64(value_dynamic);
    let bit = rng.gen_range_u64(64) as u32;
    Injection { target: InjectionTarget::DynamicIndex(dyn_index), bit, burst }
}

/// Runs a statistical FI campaign for one input.
pub fn run_campaign(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: CampaignConfig,
) -> Result<CampaignResult, CampaignError> {
    let golden = golden_run(module, inputs, limits)?;
    if golden.profile.value_dynamic == 0 {
        return Err(CampaignError::NoFaultSites);
    }

    let faulty_limits = ExecLimits {
        max_dynamic: golden
            .profile
            .dynamic
            .saturating_mul(cfg.hang_factor)
            .saturating_add(10_000),
        ..limits
    };

    let nthreads = effective_threads(cfg.threads, cfg.trials as usize);
    let mut outcomes = vec![FaultOutcome::Benign; cfg.trials as usize];

    let run_trial = |t: u32| -> FaultOutcome {
        // Per-trial stream independent of scheduling.
        let mut rng = Pcg64::new(cfg.seed ^ (t as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let inj = sample_fault_burst(&mut rng, golden.profile.value_dynamic, cfg.burst);
        let vm = Vm::new(module, faulty_limits);
        let faulty = vm.run_numeric(inputs, Some(inj));
        classify(&golden, &faulty)
    };

    if nthreads <= 1 {
        for (t, slot) in outcomes.iter_mut().enumerate() {
            *slot = run_trial(t as u32);
        }
    } else {
        let chunk = outcomes.len().div_ceil(nthreads);
        crossbeam::thread::scope(|s| {
            for (ci, chunk_slice) in outcomes.chunks_mut(chunk).enumerate() {
                let run_trial = &run_trial;
                s.spawn(move |_| {
                    for (off, slot) in chunk_slice.iter_mut().enumerate() {
                        *slot = run_trial((ci * chunk + off) as u32);
                    }
                });
            }
        })
        .expect("campaign worker panicked");
    }

    let mut sdc = 0;
    let mut crash = 0;
    let mut hang = 0;
    let mut benign = 0;
    for o in &outcomes {
        match o {
            FaultOutcome::Sdc => sdc += 1,
            FaultOutcome::Crash => crash += 1,
            FaultOutcome::Hang => hang += 1,
            FaultOutcome::Benign => benign += 1,
        }
    }

    Ok(CampaignResult {
        trials: cfg.trials,
        sdc,
        crash,
        hang,
        benign,
        sdc_ci: binomial_ci(sdc as u64, cfg.trials as u64, Z_95),
        executions: cfg.trials as u64 + 1,
        golden_dynamic: golden.profile.dynamic,
    })
}

pub(crate) fn effective_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let n = if requested == 0 { hw } else { requested };
    n.clamp(1, work_items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A kernel where faults visibly matter: accumulates a function of
    /// the input and outputs the sum plus a guard value.
    const SRC: &str = r#"
        global float buf[64];
        fn main(n: int, s: float) {
            for (i = 0; i < n; i = i + 1) {
                buf[i] = s * i2f(i) + 1.0;
            }
            let acc = 0.0;
            for (i = 0; i < n; i = i + 1) {
                acc = acc + buf[i] * buf[i];
            }
            output acc;
        }
    "#;

    fn module() -> Module {
        peppa_lang::compile(SRC, "camp").unwrap()
    }

    #[test]
    fn campaign_counts_sum_to_trials() {
        let m = module();
        let cfg = CampaignConfig { trials: 200, seed: 1, ..Default::default() };
        let r = run_campaign(&m, &[16.0, 0.5], ExecLimits::default(), cfg).unwrap();
        assert_eq!(r.sdc + r.crash + r.hang + r.benign, r.trials);
        assert!(r.sdc > 0, "expected some SDCs, got {r:?}");
        assert_eq!(r.executions, 201);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let m = module();
        let base = CampaignConfig { trials: 120, seed: 77, hang_factor: 8, threads: 1, burst: 0 };
        let a = run_campaign(&m, &[12.0, 0.25], ExecLimits::default(), base).unwrap();
        let b = run_campaign(
            &m,
            &[12.0, 0.25],
            ExecLimits::default(),
            CampaignConfig { threads: 4, ..base },
        )
        .unwrap();
        assert_eq!((a.sdc, a.crash, a.hang, a.benign), (b.sdc, b.crash, b.hang, b.benign));
    }

    #[test]
    fn different_seeds_vary() {
        let m = module();
        let mk = |seed| CampaignConfig { trials: 150, seed, ..Default::default() };
        let a = run_campaign(&m, &[16.0, 0.5], ExecLimits::default(), mk(1)).unwrap();
        let b = run_campaign(&m, &[16.0, 0.5], ExecLimits::default(), mk(2)).unwrap();
        // Same distribution, different sample: exact tie across all four
        // counters is very unlikely.
        assert!(
            (a.sdc, a.crash, a.hang, a.benign) != (b.sdc, b.crash, b.hang, b.benign),
            "two seeds produced identical outcome vectors"
        );
    }

    #[test]
    fn golden_failure_rejected() {
        // x = 0 divides by zero in the golden run, so the input is
        // rejected before any trial.
        let m = peppa_lang::compile("fn main(x: int) { output 100 / x; }", "div").unwrap();
        let e = run_campaign(&m, &[0.0], ExecLimits::default(), Default::default());
        assert!(matches!(e, Err(CampaignError::GoldenRunFailed(_))));
        // A clean divisor works.
        let ok = run_campaign(
            &m,
            &[5.0],
            ExecLimits::default(),
            CampaignConfig { trials: 50, ..Default::default() },
        )
        .unwrap();
        assert_eq!(ok.trials, 50);
    }

    #[test]
    fn sdc_probability_and_ci_consistent() {
        let m = module();
        let cfg = CampaignConfig { trials: 300, seed: 5, ..Default::default() };
        let r = run_campaign(&m, &[20.0, 1.5], ExecLimits::default(), cfg).unwrap();
        let p = r.sdc_prob();
        assert!(r.sdc_ci.lo <= p && p <= r.sdc_ci.hi);
    }
}

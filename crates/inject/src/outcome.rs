//! Fault outcome classification.

use peppa_vm::{RunOutput, RunStatus};
use serde::{Deserialize, Serialize};

/// The four failure categories of §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// Clean exit with output mismatching the golden run.
    Sdc,
    /// Hardware trap (out-of-bounds access, division by zero, …).
    Crash,
    /// Dynamic-instruction budget exhausted.
    Hang,
    /// Clean exit, output identical to the golden run — the fault was
    /// masked or overwritten.
    Benign,
}

/// Classifies a faulty run against its golden counterpart.
pub fn classify(golden: &RunOutput, faulty: &RunOutput) -> FaultOutcome {
    match faulty.status {
        RunStatus::Trap(_) => FaultOutcome::Crash,
        RunStatus::Hang => FaultOutcome::Hang,
        RunStatus::Ok => {
            if faulty.output != golden.output || faulty.ret != golden.ret {
                FaultOutcome::Sdc
            } else {
                FaultOutcome::Benign
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_vm::Profile;

    fn mk(status: RunStatus, output: Vec<u64>, ret: Option<u64>) -> RunOutput {
        RunOutput {
            status,
            output,
            ret,
            profile: Profile::new(0),
            fault_activated: true,
            memory: None,
        }
    }

    #[test]
    fn classification_matrix() {
        let golden = mk(RunStatus::Ok, vec![1, 2], Some(3));
        assert_eq!(
            classify(&golden, &mk(RunStatus::Ok, vec![1, 2], Some(3))),
            FaultOutcome::Benign
        );
        assert_eq!(
            classify(&golden, &mk(RunStatus::Ok, vec![1, 9], Some(3))),
            FaultOutcome::Sdc
        );
        assert_eq!(
            classify(&golden, &mk(RunStatus::Ok, vec![1, 2], Some(4))),
            FaultOutcome::Sdc
        );
        assert_eq!(
            classify(
                &golden,
                &mk(RunStatus::Trap(peppa_vm::Trap::DivByZero), vec![], None)
            ),
            FaultOutcome::Crash
        );
        assert_eq!(
            classify(&golden, &mk(RunStatus::Hang, vec![1], None)),
            FaultOutcome::Hang
        );
    }

    #[test]
    fn truncated_output_is_sdc() {
        let golden = mk(RunStatus::Ok, vec![1, 2], None);
        assert_eq!(
            classify(&golden, &mk(RunStatus::Ok, vec![1], None)),
            FaultOutcome::Sdc
        );
    }
}

//! Fork-point planning for snapshotted campaigns.
//!
//! A snapshotted campaign knows every trial's fault site before any
//! faulty execution starts (per-trial RNG streams depend only on
//! `(seed, trial)`), so it can place its golden-prefix snapshots where
//! the *sampled* sites actually land rather than uniformly over the
//! run. [`plan_fork_points`] picks stratified sample quantiles: with
//! `k` points over `n` sorted sites, point `j` sits at the
//! `j·n/k`-th site, so each snapshot serves roughly `n/k` trials and
//! the first snapshot sits exactly at the earliest sampled site —
//! trials never replay more golden prefix than the stratification
//! resolution forces.
//!
//! A fork point is a *value-dynamic* coordinate: a snapshot captured at
//! value-dynamic `p` froze the machine just before the `p`-th
//! value-producing instruction (0-based), so it is a valid start for
//! any injection site `s >= p`. [`fork_point_for`] picks the latest
//! such point for a trial.

/// Plans up to `k` stratified fork points over the sampled fault sites.
///
/// Returns a sorted, deduplicated list of value-dynamic coordinates
/// (possibly fewer than `k` when sites repeat or `k > n`). Empty when
/// `k == 0` or there are no sites — the campaign then runs every trial
/// from program entry, exactly like the classic runner.
pub fn plan_fork_points(sites: &[u64], k: u32) -> Vec<u64> {
    if k == 0 || sites.is_empty() {
        return Vec::new();
    }
    let mut sorted = sites.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let k = (k as usize).min(n);
    let mut points: Vec<u64> = (0..k).map(|j| sorted[j * n / k]).collect();
    points.dedup();
    points
}

/// Index of the latest fork point usable for a fault at dynamic value
/// index `site` (the latest `points[i] <= site`), or `None` when the
/// site precedes every point and the trial must run from entry.
///
/// `points` must be sorted ascending ([`plan_fork_points`] output is).
pub fn fork_point_for(points: &[u64], site: u64) -> Option<usize> {
    points.partition_point(|&p| p <= site).checked_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_plan_nothing() {
        assert!(plan_fork_points(&[], 8).is_empty());
        assert!(plan_fork_points(&[5, 9], 0).is_empty());
    }

    #[test]
    fn first_point_is_the_earliest_site() {
        let sites = [40, 7, 99, 12, 63];
        for k in 1..=8 {
            let points = plan_fork_points(&sites, k);
            assert_eq!(points[0], 7, "k={k}: {points:?}");
        }
    }

    #[test]
    fn points_are_sorted_distinct_and_bounded_by_k() {
        let sites: Vec<u64> = (0..100).map(|i| (i * 37) % 1000).collect();
        for k in [1, 3, 8, 64, 200] {
            let points = plan_fork_points(&sites, k);
            assert!(points.len() <= k as usize);
            assert!(points.windows(2).all(|w| w[0] < w[1]), "k={k}: {points:?}");
            // Every point is an actual site: snapshots are only taken
            // where a sampled trial can use them.
            for p in &points {
                assert!(sites.contains(p));
            }
        }
    }

    #[test]
    fn duplicate_sites_dedup() {
        let points = plan_fork_points(&[5, 5, 5, 5], 4);
        assert_eq!(points, vec![5]);
    }

    #[test]
    fn fork_point_lookup_picks_latest_preceding() {
        let points = [10, 50, 90];
        assert_eq!(fork_point_for(&points, 5), None);
        assert_eq!(fork_point_for(&points, 10), Some(0));
        assert_eq!(fork_point_for(&points, 49), Some(0));
        assert_eq!(fork_point_for(&points, 50), Some(1));
        assert_eq!(fork_point_for(&points, 1000), Some(2));
        assert_eq!(fork_point_for(&[], 7), None);
    }

    #[test]
    fn every_site_has_a_fork_point_when_planned_from_it() {
        let sites: Vec<u64> = (0..257).map(|i| (i * 101) % 5000).collect();
        let points = plan_fork_points(&sites, 16);
        for &s in &sites {
            let i = fork_point_for(&points, s).expect("first point covers the smallest site");
            assert!(points[i] <= s);
        }
    }
}

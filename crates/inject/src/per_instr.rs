//! Per-instruction SDC probability measurement (§3.1.4: "we inject 100
//! random faults to each static instruction of each benchmark on each
//! input").
//!
//! For a static instruction `sid`, each trial picks a uniformly random
//! dynamic *instance* of `sid` from the golden run and a random bit of
//! its result, then classifies the outcome. Instructions that never
//! execute under the input, or that produce no value (stores, outputs,
//! void calls), have no measurement.

use crate::campaign::{effective_threads, golden_run, CampaignError};
use crate::outcome::{classify, FaultOutcome};
use peppa_ir::{InstrId, Module};
use peppa_stats::Pcg64;
use peppa_vm::{ExecLimits, Injection, InjectionTarget, Vm};
use serde::{Deserialize, Serialize};

/// Configuration for per-instruction measurement.
#[derive(Debug, Clone, Copy)]
pub struct PerInstrConfig {
    /// FI trials per instruction.
    pub trials_per_instr: u32,
    pub seed: u64,
    pub hang_factor: u64,
    /// Worker threads; 0 = all cores.
    pub threads: usize,
}

impl Default for PerInstrConfig {
    fn default() -> Self {
        PerInstrConfig {
            trials_per_instr: 100,
            seed: 0xd157,
            hang_factor: 8,
            threads: 0,
        }
    }
}

/// Per-instruction measurement for one input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerInstrResult {
    /// `sdc_prob[sid]`: measured SDC probability, or `None` when the
    /// instruction was not measurable (never executed / no result value).
    pub sdc_prob: Vec<Option<f64>>,
    /// Trials actually spent.
    pub total_trials: u64,
    /// Program executions consumed (trials + golden).
    pub executions: u64,
}

impl PerInstrResult {
    /// The measured probabilities for a set of instruction ids, skipping
    /// unmeasured ones.
    pub fn probs_for(&self, sids: &[InstrId]) -> Vec<f64> {
        sids.iter()
            .filter_map(|s| self.sdc_prob[s.0 as usize])
            .collect()
    }

    /// Ids of all measured instructions.
    pub fn measured_sids(&self) -> Vec<InstrId> {
        self.sdc_prob
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(i, _)| InstrId(i as u32))
            .collect()
    }
}

/// Measures SDC probability for the given instructions (or for every
/// measurable instruction if `subset` is `None`).
pub fn per_instruction_sdc(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    cfg: PerInstrConfig,
    subset: Option<&[InstrId]>,
) -> Result<PerInstrResult, CampaignError> {
    let golden = golden_run(module, inputs, limits)?;

    // Which instructions have a result value?
    let mut has_result = vec![false; module.num_instrs];
    for (_, ins) in module.all_instrs() {
        has_result[ins.sid.0 as usize] = ins.result.is_some();
    }

    let targets: Vec<InstrId> = match subset {
        Some(s) => s.to_vec(),
        None => (0..module.num_instrs as u32).map(InstrId).collect(),
    };
    let work: Vec<InstrId> = targets
        .into_iter()
        .filter(|sid| has_result[sid.0 as usize] && golden.profile.exec_counts[sid.0 as usize] > 0)
        .collect();

    let faulty_limits = ExecLimits {
        max_dynamic: golden
            .profile
            .dynamic
            .saturating_mul(cfg.hang_factor)
            .saturating_add(10_000),
        ..limits
    };

    let measure_one = |sid: InstrId| -> f64 {
        let count = golden.profile.exec_counts[sid.0 as usize];
        let mut sdc = 0u32;
        for t in 0..cfg.trials_per_instr {
            let mut rng = Pcg64::new(
                cfg.seed ^ (sid.0 as u64) << 32 ^ (t as u64).wrapping_mul(0x2545f4914f6cdd1d),
            );
            let instance = rng.gen_range_u64(count);
            let bit = rng.gen_range_u64(64) as u32;
            let inj = Injection {
                target: InjectionTarget::StaticInstance { sid, instance },
                bit,
                burst: 0,
            };
            let vm = Vm::new(module, faulty_limits);
            let faulty = vm.run_numeric(inputs, Some(inj));
            debug_assert!(
                faulty.fault_activated,
                "instance sampled from golden must activate"
            );
            if classify(&golden, &faulty) == FaultOutcome::Sdc {
                sdc += 1;
            }
        }
        sdc as f64 / cfg.trials_per_instr as f64
    };

    let nthreads = effective_threads(cfg.threads, work.len());
    let mut measured: Vec<f64> = vec![0.0; work.len()];
    if nthreads <= 1 {
        for (i, sid) in work.iter().enumerate() {
            measured[i] = measure_one(*sid);
        }
    } else {
        let chunk = work.len().div_ceil(nthreads);
        crossbeam::thread::scope(|s| {
            for (slice_ids, slice_out) in work.chunks(chunk).zip(measured.chunks_mut(chunk)) {
                let measure_one = &measure_one;
                s.spawn(move |_| {
                    for (sid, out) in slice_ids.iter().zip(slice_out.iter_mut()) {
                        *out = measure_one(*sid);
                    }
                });
            }
        })
        .expect("per-instruction worker panicked");
    }

    let mut sdc_prob = vec![None; module.num_instrs];
    for (sid, p) in work.iter().zip(&measured) {
        sdc_prob[sid.0 as usize] = Some(*p);
    }
    let total_trials = work.len() as u64 * cfg.trials_per_instr as u64;
    Ok(PerInstrResult {
        sdc_prob,
        total_trials,
        executions: total_trials + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        fn main(n: int) {
            let acc = 0;
            for (i = 0; i < n; i = i + 1) {
                let masked = min(i, 1);      // heavy masking: result 0/1
                let direct = i * 3;          // flips propagate linearly
                acc = acc + masked + direct;
            }
            output acc;
        }
    "#;

    fn module() -> Module {
        peppa_lang::compile(SRC, "pi").unwrap()
    }

    #[test]
    fn measures_only_executed_value_instrs() {
        let m = module();
        let cfg = PerInstrConfig {
            trials_per_instr: 20,
            seed: 3,
            ..Default::default()
        };
        let r = per_instruction_sdc(&m, &[10.0], ExecLimits::default(), cfg, None).unwrap();
        assert_eq!(r.sdc_prob.len(), m.num_instrs);
        let measured = r.measured_sids();
        assert!(!measured.is_empty());
        // `output` has no result; it must be unmeasured.
        for (_, ins) in m.all_instrs() {
            if ins.result.is_none() {
                assert!(r.sdc_prob[ins.sid.0 as usize].is_none());
            }
        }
    }

    #[test]
    fn subset_restricts_work() {
        let m = module();
        let cfg = PerInstrConfig {
            trials_per_instr: 10,
            seed: 3,
            ..Default::default()
        };
        let all = per_instruction_sdc(&m, &[10.0], ExecLimits::default(), cfg, None).unwrap();
        let some: Vec<InstrId> = all.measured_sids().into_iter().take(2).collect();
        let r = per_instruction_sdc(&m, &[10.0], ExecLimits::default(), cfg, Some(&some)).unwrap();
        assert_eq!(r.measured_sids(), some);
        assert_eq!(r.total_trials, 20);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let m = module();
        let cfg = PerInstrConfig {
            trials_per_instr: 30,
            seed: 9,
            ..Default::default()
        };
        let r = per_instruction_sdc(&m, &[8.0], ExecLimits::default(), cfg, None).unwrap();
        for p in r.sdc_prob.iter().flatten() {
            assert!((0.0..=1.0).contains(p));
        }
    }

    #[test]
    fn deterministic_across_threads() {
        let m = module();
        let mk = |threads| PerInstrConfig {
            trials_per_instr: 15,
            seed: 4,
            hang_factor: 8,
            threads,
        };
        let a = per_instruction_sdc(&m, &[10.0], ExecLimits::default(), mk(1), None).unwrap();
        let b = per_instruction_sdc(&m, &[10.0], ExecLimits::default(), mk(4), None).unwrap();
        assert_eq!(a.sdc_prob, b.sdc_prob);
    }

    #[test]
    fn masking_shows_in_probabilities() {
        // The `min(i, 1)` result feeds a sum that is bounded; flipping
        // high bits of `i * 3` corrupts the accumulator directly. The
        // direct path should show a clearly higher SDC probability than
        // the most-masked instruction.
        let m = module();
        let cfg = PerInstrConfig {
            trials_per_instr: 60,
            seed: 11,
            ..Default::default()
        };
        let r = per_instruction_sdc(&m, &[12.0], ExecLimits::default(), cfg, None).unwrap();
        let probs: Vec<f64> = r.sdc_prob.iter().flatten().copied().collect();
        let max = probs.iter().cloned().fold(0.0, f64::max);
        let min = probs.iter().cloned().fold(1.0, f64::min);
        assert!(
            max > min,
            "expected heterogeneous per-instruction SDC sensitivity"
        );
    }
}

//! Error-propagation tracing: how far does one bit flip spread?
//!
//! Supports the paper's §7.1.1 use case (data generation for modeling
//! error propagation, cf. FlipTracker/TensorFI-style studies): for one
//! fault, sample the *state divergence* between the faulty and the
//! golden execution at increasing dynamic-instruction budgets. At each
//! sample point both executions are replayed up to the budget and their
//! memory images and output streams diffed — a deterministic, restart-
//! based alternative to lockstep shadow execution that remains exact
//! even after control-flow divergence.

use crate::outcome::{classify, FaultOutcome};
use peppa_ir::Module;
use peppa_vm::{encode_inputs, ExecLimits, Injection, Vm};
use serde::{Deserialize, Serialize};

/// Divergence between faulty and golden state at one sample point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationSample {
    /// Dynamic-instruction budget of this snapshot.
    pub dynamic: u64,
    /// Memory words whose contents differ.
    pub corrupted_mem_words: usize,
    /// Output words that differ (including length mismatches).
    pub corrupted_outputs: usize,
}

/// A full propagation trace for one fault.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PropagationTrace {
    pub injection_bit: u32,
    pub samples: Vec<PropagationSample>,
    /// Final classification of the (unbudgeted) faulty run.
    pub outcome: FaultOutcome,
    /// Peak memory corruption across samples.
    pub peak_corruption: usize,
}

impl PropagationTrace {
    /// True if the corruption ever reached memory at all.
    pub fn reached_memory(&self) -> bool {
        self.peak_corruption > 0
    }
}

/// Traces the propagation of `injection` through an execution of
/// `module` on `inputs`, sampling at `samples` evenly spaced points.
pub fn trace_propagation(
    module: &Module,
    inputs: &[f64],
    injection: Injection,
    limits: ExecLimits,
    samples: usize,
) -> PropagationTrace {
    assert!(samples >= 1, "need at least one sample point");
    let bits = encode_inputs(module.entry_func(), inputs);

    let full_vm = Vm::new(module, limits);
    let golden_full = full_vm.run(&bits, None);
    let faulty_full = full_vm.run(&bits, Some(injection));
    let outcome = classify(&golden_full, &faulty_full);
    let total = golden_full.profile.dynamic.max(1);

    let mut out = PropagationTrace {
        injection_bit: injection.bit,
        samples: Vec::with_capacity(samples),
        outcome,
        peak_corruption: 0,
    };

    for k in 1..=samples {
        let budget = total * k as u64 / samples as u64;
        let lim = ExecLimits {
            max_dynamic: budget.max(1),
            ..limits
        };
        let vm = Vm::new(module, lim);
        let golden = vm.run_capture(&bits, None);
        let faulty = vm.run_capture(&bits, Some(injection));

        let gm = golden.memory.as_ref().expect("capture requested");
        let fm = faulty.memory.as_ref().expect("capture requested");
        let corrupted_mem_words =
            gm.iter().zip(fm.iter()).filter(|(a, b)| a != b).count() + gm.len().abs_diff(fm.len());

        let common = golden.output.len().min(faulty.output.len());
        let corrupted_outputs = golden.output[..common]
            .iter()
            .zip(&faulty.output[..common])
            .filter(|(a, b)| a != b)
            .count()
            + golden.output.len().abs_diff(faulty.output.len());

        out.peak_corruption = out.peak_corruption.max(corrupted_mem_words);
        out.samples.push(PropagationSample {
            dynamic: budget,
            corrupted_mem_words,
            corrupted_outputs,
        });
    }
    out
}

/// Generates a labeled FI corpus (§7.1.2's "data generation" use case):
/// `count` faults sampled uniformly, each classified, with its final
/// memory/output corruption. SDC-bound inputs make this corpus far
/// denser in SDC examples than reference inputs do.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusEntry {
    pub dyn_index: u64,
    pub bit: u32,
    pub outcome: FaultOutcome,
    pub corrupted_mem_words: usize,
    pub corrupted_outputs: usize,
}

/// Runs the corpus generation.
pub fn generate_corpus(
    module: &Module,
    inputs: &[f64],
    limits: ExecLimits,
    count: usize,
    seed: u64,
) -> Result<Vec<CorpusEntry>, crate::campaign::CampaignError> {
    let golden = crate::campaign::golden_run(module, inputs, limits)?;
    if golden.profile.value_dynamic == 0 {
        return Err(crate::campaign::CampaignError::NoFaultSites);
    }
    let bits = encode_inputs(module.entry_func(), inputs);
    let golden_mem = {
        let vm = Vm::new(module, limits);
        vm.run_capture(&bits, None).memory.expect("capture")
    };

    let faulty_limits = ExecLimits {
        max_dynamic: golden.profile.dynamic * 8 + 10_000,
        ..limits
    };
    let mut rng = peppa_stats::Pcg64::new(seed);
    let mut corpus = Vec::with_capacity(count);
    let vm = Vm::new(module, faulty_limits);
    for _ in 0..count {
        let inj = crate::campaign::sample_fault(&mut rng, golden.profile.value_dynamic);
        let faulty = vm.run_capture(&bits, Some(inj));
        let outcome = classify(&golden, &faulty);
        let fm = faulty.memory.as_ref().expect("capture");
        let corrupted_mem_words = golden_mem
            .iter()
            .zip(fm.iter())
            .filter(|(a, b)| a != b)
            .count();
        let common = golden.output.len().min(faulty.output.len());
        let corrupted_outputs = golden.output[..common]
            .iter()
            .zip(&faulty.output[..common])
            .filter(|(a, b)| a != b)
            .count()
            + golden.output.len().abs_diff(faulty.output.len());
        let dyn_index = match inj.target {
            peppa_vm::InjectionTarget::DynamicIndex(k) => k,
            peppa_vm::InjectionTarget::StaticInstance { .. } => unreachable!(),
        };
        corpus.push(CorpusEntry {
            dyn_index,
            bit: inj.bit,
            outcome,
            corrupted_mem_words,
            corrupted_outputs,
        });
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_vm::InjectionTarget;

    const SRC: &str = r#"
        global float buf[32];
        fn main(n: int) {
            for (i = 0; i < n; i = i + 1) {
                buf[i] = i2f(i) * 2.0;
            }
            let acc = 0.0;
            for (i = 0; i < n; i = i + 1) {
                acc = acc + buf[i];
            }
            output acc;
        }
    "#;

    fn module() -> Module {
        peppa_lang::compile(SRC, "prop").unwrap()
    }

    fn small_limits() -> ExecLimits {
        ExecLimits {
            memory_words: 256,
            ..Default::default()
        }
    }

    #[test]
    fn corruption_monotonically_visible_for_store_chain() {
        let m = module();
        // Flip a high bit of an early multiply: the corrupted value is
        // stored into buf and later read into the accumulator.
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(3),
            bit: 60,
            burst: 0,
        };
        let t = trace_propagation(&m, &[16.0], inj, small_limits(), 8);
        assert_eq!(t.samples.len(), 8);
        assert!(t.reached_memory(), "{t:?}");
        // Corruption stays bounded by the buffer size + accumulator.
        assert!(t.peak_corruption <= 40, "{}", t.peak_corruption);
    }

    #[test]
    fn benign_fault_leaves_no_trace_at_end() {
        let m = module();
        let vm = Vm::new(&m, small_limits());
        let golden = vm.run_numeric(&[8.0], None);
        // Find a benign fault by scanning a few bits on the loop icmp.
        let mut found = None;
        for dyn_index in 0..golden.profile.value_dynamic {
            let inj = Injection {
                target: InjectionTarget::DynamicIndex(dyn_index),
                bit: 1,
                burst: 0,
            };
            let f = vm.run_numeric(&[8.0], Some(inj));
            if f.status.is_ok() && f.output == golden.output && f.ret == golden.ret {
                found = Some(inj);
                break;
            }
        }
        let inj = found.expect("some fault is benign");
        let t = trace_propagation(&m, &[8.0], inj, small_limits(), 4);
        assert_eq!(t.outcome, FaultOutcome::Benign);
        assert_eq!(t.samples.last().unwrap().corrupted_outputs, 0);
    }

    #[test]
    fn corpus_has_all_fields_and_is_deterministic() {
        let m = module();
        let a = generate_corpus(&m, &[12.0], small_limits(), 40, 9).unwrap();
        let b = generate_corpus(&m, &[12.0], small_limits(), 40, 9).unwrap();
        assert_eq!(a.len(), 40);
        assert_eq!(a, b);
        // The corpus must contain a mix of outcomes on this kernel.
        let sdc = a.iter().filter(|e| e.outcome == FaultOutcome::Sdc).count();
        assert!(sdc > 0, "no SDCs in corpus");
        for e in &a {
            if e.outcome == FaultOutcome::Benign {
                assert_eq!(e.corrupted_outputs, 0, "{e:?}");
            }
        }
    }

    #[test]
    fn sdc_fault_shows_output_corruption() {
        let m = module();
        let vm = Vm::new(&m, small_limits());
        let golden = vm.run_numeric(&[10.0], None);
        // Find an SDC fault.
        let mut found = None;
        'outer: for dyn_index in 0..golden.profile.value_dynamic {
            for bit in [40, 52] {
                let inj = Injection {
                    target: InjectionTarget::DynamicIndex(dyn_index),
                    bit,
                    burst: 0,
                };
                let f = vm.run_numeric(&[10.0], Some(inj));
                if f.status.is_ok() && f.output != golden.output {
                    found = Some(inj);
                    break 'outer;
                }
            }
        }
        let inj = found.expect("some fault is an SDC");
        let t = trace_propagation(&m, &[10.0], inj, small_limits(), 6);
        assert_eq!(t.outcome, FaultOutcome::Sdc);
        assert!(t.samples.last().unwrap().corrupted_outputs > 0);
    }
}

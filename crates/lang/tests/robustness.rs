//! Robustness: the compiler must reject garbage with an error, never
//! panic; and compilation must be a pure function of the source.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(src in "\\PC{0,200}") {
        let _ = peppa_lang::lexer::lex(&src);
    }

    #[test]
    fn parser_never_panics(src in "[a-z0-9(){};=+*<> \n]{0,300}") {
        let _ = peppa_lang::parse(&src);
    }

    #[test]
    fn compile_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("fn"), Just("main"), Just("let"), Just("if"), Just("while"),
                Just("("), Just(")"), Just("{"), Just("}"), Just(";"), Just("="),
                Just("+"), Just("x"), Just("1"), Just("2.5"), Just("int"),
                Just("return"), Just("output"), Just(","), Just(":"), Just("<"),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = peppa_lang::compile(&src, "soup");
    }

    #[test]
    fn compilation_deterministic(n in 1i64..50) {
        let src = format!(
            "fn main(x: int) {{ let y = x * {n}; if (y > 10) {{ output y; }} output x; }}"
        );
        let a = peppa_lang::compile(&src, "det").unwrap();
        let b = peppa_lang::compile(&src, "det").unwrap();
        prop_assert_eq!(a.num_instrs, b.num_instrs);
        prop_assert_eq!(a.to_string(), b.to_string());
    }
}

#[test]
fn deeply_nested_blocks_compile() {
    let mut src = String::from("fn main(x: int) { let acc = 0; ");
    for i in 0..30 {
        src.push_str(&format!("if (x > {i}) {{ acc = acc + {i}; "));
    }
    src.push_str(&"}".repeat(30));
    src.push_str(" output acc; }");
    let m = peppa_lang::compile(&src, "deep").unwrap();
    assert!(m.num_instrs > 60);
}

#[test]
fn long_straightline_function_compiles() {
    let mut src = String::from("fn main(x: int) { let a0 = x; ");
    for i in 1..300 {
        src.push_str(&format!("let a{i} = a{} + {i}; ", i - 1));
    }
    src.push_str("output a299; }");
    let m = peppa_lang::compile(&src, "long").unwrap();
    assert_eq!(m.num_instrs, 300); // 299 adds + 1 output
}

#[test]
fn compiled_ir_always_verifies_for_samples() {
    // A gallery of tricky-but-legal programs; compile() verifies
    // internally, so success means the generated SSA is well-formed.
    let samples = [
        // break out of nested loops
        "fn main(n: int) { for (i = 0; i < n; i = i + 1) { for (j = 0; j < n; j = j + 1) { if (i * j > 10) { break; } } } }",
        // continue at loop top
        "fn main(n: int) { let s = 0; for (i = 0; i < n; i = i + 1) { if (i % 2 == 0) { continue; } s = s + i; } output s; }",
        // variable used across a merge defined in both arms
        "fn main(x: int) { let y = 0; if (x > 0) { y = 1; } else { y = 2; } output y; }",
        // while with complex condition
        "fn main(x: int) { let i = 0; while (i < x && i * i < 100) { i = i + 1; } output i; }",
        // early return in a loop
        "fn main(x: int) -> int { for (i = 0; i < x; i = i + 1) { if (i == 7) { return i; } } return 0 - 1; }",
        // shadowing in nested scopes
        "fn main() { let x = 1; if (x == 1) { let x = 2; if (x == 2) { let x = 3; output x; } } output x; }",
        // recursion with two call sites
        "fn f(n: int) -> int { if (n < 2) { return n; } return f(n - 1) + f(n - 2); } fn main() { output f(10); }",
    ];
    for (i, src) in samples.iter().enumerate() {
        peppa_lang::compile(src, "sample").unwrap_or_else(|e| panic!("sample {i}: {e}"));
    }
}

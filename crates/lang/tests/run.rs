//! End-to-end tests: compile MiniC, execute on the PIR VM, compare the
//! observable output against a Rust reference computation.

use peppa_vm::{ExecLimits, RunStatus, Vm};
use proptest::prelude::*;

fn run(src: &str, inputs: &[f64]) -> peppa_vm::RunOutput {
    let m = peppa_lang::compile(src, "test").expect("compile");
    let vm = Vm::new(&m, ExecLimits::default());
    vm.run_numeric(inputs, None)
}

fn run_ok(src: &str, inputs: &[f64]) -> Vec<u64> {
    let out = run(src, inputs);
    assert_eq!(out.status, RunStatus::Ok, "program did not exit cleanly");
    out.output
}

fn as_f64(bits: &[u64]) -> Vec<f64> {
    bits.iter().map(|&b| f64::from_bits(b)).collect()
}

#[test]
fn arithmetic_and_output() {
    let out = run_ok(
        "fn main(a: int, b: int) { output a + b * 2; output a % b; output a / b; }",
        &[17.0, 5.0],
    );
    assert_eq!(out, vec![27, 2, 3]);
}

#[test]
fn float_math_builtins() {
    let out = run_ok(
        "fn main(x: float) { output sqrt(x); output fabs(0.0 - x); output floor(x); }",
        &[6.25],
    );
    assert_eq!(as_f64(&out), vec![2.5, 6.25, 6.0]);
}

#[test]
fn while_loop_factorial() {
    let src = r#"
        fn main(n: int) {
            let f = 1;
            let i = 1;
            while (i <= n) { f = f * i; i = i + 1; }
            output f;
        }
    "#;
    assert_eq!(run_ok(src, &[10.0]), vec![3628800]);
}

#[test]
fn for_loop_with_break_continue() {
    let src = r#"
        fn main(n: int) {
            let acc = 0;
            for (i = 0; i < n; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 20) { break; }
                acc = acc + i;
            }
            output acc;
        }
    "#;
    // 1+3+...+19 = 100.
    assert_eq!(run_ok(src, &[1000.0]), vec![100]);
}

#[test]
fn nested_loops_and_arrays() {
    let src = r#"
        global float grid[100];
        fn main(n: int) {
            for (i = 0; i < n; i = i + 1) {
                for (j = 0; j < n; j = j + 1) {
                    grid[i * n + j] = i2f(i) * 10.0 + i2f(j);
                }
            }
            let sum = 0.0;
            for (k = 0; k < n * n; k = k + 1) { sum = sum + grid[k]; }
            output sum;
        }
    "#;
    // n=4: sum over i,j of (10i + j) = 10*16*1.5 + 16*1.5 = 240+24.
    assert_eq!(as_f64(&run_ok(src, &[4.0])), vec![264.0]);
}

#[test]
fn local_stack_arrays() {
    let src = r#"
        fn main(n: int) {
            var int buf[n];
            for (i = 0; i < n; i = i + 1) { buf[i] = i * i; }
            let s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + buf[i]; }
            output s;
        }
    "#;
    assert_eq!(run_ok(src, &[5.0]), vec![30]);
}

#[test]
fn functions_and_recursion() {
    let src = r#"
        fn fib(n: int) -> int {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main(n: int) { output fib(n); }
    "#;
    assert_eq!(run_ok(src, &[15.0]), vec![610]);
}

#[test]
fn if_else_chains_ssa_merge() {
    let src = r#"
        fn main(x: int) {
            let y = 0;
            if (x < 0) { y = 1; }
            else if (x == 0) { y = 2; }
            else { y = 3; }
            output y;
        }
    "#;
    assert_eq!(run_ok(src, &[-5.0]), vec![1]);
    assert_eq!(run_ok(src, &[0.0]), vec![2]);
    assert_eq!(run_ok(src, &[9.0]), vec![3]);
}

#[test]
fn variable_defined_in_both_arms() {
    // The classic SSA diamond: both arms assign, merge needs a φ.
    let src = r#"
        fn main(x: int) {
            let a = x;
            let b = 0;
            if (a > 10) { b = a * 2; a = 1; } else { b = a + 100; a = 2; }
            output a + b;
        }
    "#;
    assert_eq!(run_ok(src, &[20.0]), vec![41]);
    assert_eq!(run_ok(src, &[3.0]), vec![105]);
}

#[test]
fn loop_carried_ssa_values() {
    // Two interleaved loop-carried variables exercise back-edge φs.
    let src = r#"
        fn main(n: int) {
            let a = 0;
            let b = 1;
            for (i = 0; i < n; i = i + 1) {
                let t = a + b;
                a = b;
                b = t;
            }
            output a;
        }
    "#;
    assert_eq!(run_ok(src, &[10.0]), vec![55]); // fib(10)
}

#[test]
fn bitwise_ops() {
    let src = r#"
        fn main(x: int, y: int) {
            output x & y;
            output x | y;
            output x ^ y;
            output x << 3;
            output x >> 1;
        }
    "#;
    assert_eq!(run_ok(src, &[12.0, 10.0]), vec![8, 14, 6, 96, 6]);
}

#[test]
fn logical_ops_non_short_circuit() {
    let src = r#"
        fn main(x: int) {
            let r = 0;
            if (x > 0 && x < 10) { r = 1; }
            if (x < 0 || x > 100) { r = r + 2; }
            if (!(x == 5)) { r = r + 4; }
            output r;
        }
    "#;
    assert_eq!(run_ok(src, &[5.0]), vec![1]);
    assert_eq!(run_ok(src, &[200.0]), vec![6]);
}

#[test]
fn min_max_abs_builtins() {
    let src = r#"
        fn main(a: int, x: float) {
            output min(a, 3);
            output max(a, 3);
            output abs(0 - a);
            output fmin(x, 1.5);
            output fmax(x, 1.5);
        }
    "#;
    let out = run_ok(src, &[7.0, 0.5]);
    assert_eq!(&out[..3], &[3, 7, 7]);
    assert_eq!(as_f64(&out[3..]), vec![0.5, 1.5]);
}

#[test]
fn conversions() {
    let src = "fn main(x: float, n: int) { output f2i(x); output i2f(n) * 0.5; }";
    let out = run_ok(src, &[7.9, 9.0]);
    assert_eq!(out[0], 7); // trunc toward zero
    assert_eq!(f64::from_bits(out[1]), 4.5);
}

#[test]
fn early_return_skips_output() {
    let src = r#"
        fn main(x: int) {
            if (x > 0) { output 1; return; }
            output 2;
        }
    "#;
    assert_eq!(run_ok(src, &[5.0]), vec![1]);
    assert_eq!(run_ok(src, &[-5.0]), vec![2]);
}

#[test]
fn unreachable_code_after_return_in_both_arms() {
    let src = r#"
        fn main(x: int) -> int {
            if (x > 0) { return 1; } else { return 2; }
        }
    "#;
    let out = run(src, &[1.0]);
    assert_eq!(out.status, RunStatus::Ok);
    assert_eq!(out.ret, Some(1));
}

#[test]
fn void_function_call_statement() {
    let src = r#"
        global int acc[1];
        fn bump(v: int) { acc[0] = acc[0] + v; }
        fn main() { bump(3); bump(4); output acc[0]; }
    "#;
    assert_eq!(run_ok(src, &[]), vec![7]);
}

#[test]
fn shadowing_in_inner_scopes() {
    let src = r#"
        fn main() {
            let x = 1;
            if (x == 1) {
                let x = 50;
                output x;
            }
            output x;
        }
    "#;
    assert_eq!(run_ok(src, &[]), vec![50, 1]);
}

// ---- compile errors -------------------------------------------------------

#[test]
fn type_error_mixed_arithmetic() {
    let e = peppa_lang::compile("fn main() { let x = 1 + 2.0; }", "t").unwrap_err();
    assert!(e.message.contains("i2f"), "{e}");
}

#[test]
fn error_unknown_variable() {
    let e = peppa_lang::compile("fn main() { output y; }", "t").unwrap_err();
    assert!(e.message.contains("unknown variable"), "{e}");
}

#[test]
fn error_missing_main() {
    let e = peppa_lang::compile("fn helper() { }", "t").unwrap_err();
    assert!(e.message.contains("main"), "{e}");
}

#[test]
fn error_break_outside_loop() {
    let e = peppa_lang::compile("fn main() { break; }", "t").unwrap_err();
    assert!(e.message.contains("break"), "{e}");
}

#[test]
fn error_missing_return_path() {
    let e = peppa_lang::compile("fn main(x: int) -> int { if (x > 0) { return 1; } }", "t")
        .unwrap_err();
    assert!(e.message.contains("without returning"), "{e}");
}

#[test]
fn error_condition_not_bool() {
    let e = peppa_lang::compile("fn main(x: int) { if (x) { } }", "t").unwrap_err();
    assert!(e.message.contains("bool"), "{e}");
}

#[test]
fn error_wrong_arity() {
    let e = peppa_lang::compile(
        "fn f(a: int) -> int { return a; } fn main() { output f(1, 2); }",
        "t",
    )
    .unwrap_err();
    assert!(e.message.contains("arguments"), "{e}");
}

// ---- property tests ---------------------------------------------------------

/// Reference semantics for the property-tested kernel below.
fn reference_kernel(n: i64, a: i64, b: i64) -> i64 {
    let mut acc: i64 = 0;
    let mut x = a;
    for i in 0..n {
        if x % 3 == 0 {
            x = x.wrapping_mul(2).wrapping_add(b);
        } else {
            x = x.wrapping_sub(i);
        }
        acc = acc.wrapping_add(x.min(1000));
    }
    acc
}

const KERNEL: &str = r#"
    fn main(n: int, a: int, b: int) {
        let acc = 0;
        let x = a;
        for (i = 0; i < n; i = i + 1) {
            if (x % 3 == 0) { x = x * 2 + b; }
            else { x = x - i; }
            acc = acc + min(x, 1000);
        }
        output acc;
    }
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_kernel_matches_rust_reference(
        n in 0i64..60,
        a in -1000i64..1000,
        b in -50i64..50,
    ) {
        let out = run_ok(KERNEL, &[n as f64, a as f64, b as f64]);
        prop_assert_eq!(out[0] as i64, reference_kernel(n, a, b));
    }

    #[test]
    fn float_accumulation_matches(
        n in 1i64..40,
        s in 0.1f64..10.0,
    ) {
        let src = r#"
            fn main(n: int, s: float) {
                let acc = 0.0;
                for (i = 0; i < n; i = i + 1) {
                    acc = acc + sqrt(s + i2f(i));
                }
                output acc;
            }
        "#;
        let out = run_ok(src, &[n as f64, s]);
        let mut want = 0.0f64;
        for i in 0..n {
            want += (s + i as f64).sqrt();
        }
        prop_assert_eq!(f64::from_bits(out[0]), want);
    }

    #[test]
    fn deterministic_across_runs(n in 0i64..30, a in -100i64..100) {
        let m = peppa_lang::compile(KERNEL, "t").unwrap();
        let vm = Vm::new(&m, ExecLimits::default());
        let r1 = vm.run_numeric(&[n as f64, a as f64, 7.0], None);
        let r2 = vm.run_numeric(&[n as f64, a as f64, 7.0], None);
        prop_assert_eq!(r1.output, r2.output);
        prop_assert_eq!(r1.profile.exec_counts, r2.profile.exec_counts);
    }
}

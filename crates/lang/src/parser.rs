//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{SpannedTok, Tok};
use crate::CompileError;

/// Parses MiniC source into a [`Program`].
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == want {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), CompileError> {
        if self.peek() == &want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                want.describe(),
                self.peek().describe()
            )))
        }
    }

    fn err(&self, message: String) -> CompileError {
        CompileError {
            line: self.line(),
            message,
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn ty(&mut self) -> Result<Type, CompileError> {
        match self.bump() {
            Tok::TyInt => Ok(Type::Int),
            Tok::TyFloat => Ok(Type::Float),
            other => Err(self.err(format!("expected type, found {}", other.describe()))),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Global => prog.globals.push(self.global()?),
                Tok::Fn => prog.funcs.push(self.func()?),
                other => {
                    return Err(self.err(format!(
                        "expected `global` or `fn` at top level, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(prog)
    }

    fn global(&mut self) -> Result<GlobalDecl, CompileError> {
        let line = self.line();
        self.expect(Tok::Global)?;
        let elem = self.ty()?;
        let name = self.ident()?;
        self.expect(Tok::LBracket)?;
        let size = match self.bump() {
            Tok::Int(v) if v > 0 => v as u64,
            other => {
                return Err(self.err(format!(
                    "global size must be a positive integer literal, found {}",
                    other.describe()
                )))
            }
        };
        self.expect(Tok::RBracket)?;
        self.expect(Tok::Semi)?;
        Ok(GlobalDecl {
            name,
            elem,
            size,
            line,
        })
    }

    fn func(&mut self) -> Result<FuncDecl, CompileError> {
        let line = self.line();
        self.expect(Tok::Fn)?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let pname = self.ident()?;
                self.expect(Tok::Colon)?;
                let pty = self.ty()?;
                params.push((pname, pty));
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma)?;
            }
        }
        let ret = if self.eat(&Tok::Arrow) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek() == &Tok::Eof {
                return Err(self.err("unterminated block".into()));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let kind = match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let name = self.ident()?;
                let ty = if self.eat(&Tok::Colon) {
                    Some(self.ty()?)
                } else {
                    None
                };
                self.expect(Tok::Assign)?;
                let init = self.expr()?;
                self.expect(Tok::Semi)?;
                StmtKind::Let { name, ty, init }
            }
            Tok::Var => {
                self.bump();
                let elem = self.ty()?;
                let name = self.ident()?;
                self.expect(Tok::LBracket)?;
                let size = self.expr()?;
                self.expect(Tok::RBracket)?;
                self.expect(Tok::Semi)?;
                StmtKind::LocalArray { name, elem, size }
            }
            Tok::If => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_blk = self.block()?;
                let else_blk = if self.eat(&Tok::Else) {
                    if self.peek() == &Tok::If {
                        // `else if`: wrap the nested if as a one-statement block.
                        Some(vec![self.stmt()?])
                    } else {
                        Some(self.block()?)
                    }
                } else {
                    None
                };
                return Ok(Stmt {
                    kind: StmtKind::If {
                        cond,
                        then_blk,
                        else_blk,
                    },
                    line,
                });
            }
            Tok::While => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                return Ok(Stmt {
                    kind: StmtKind::While { cond, body },
                    line,
                });
            }
            Tok::For => {
                self.bump();
                self.expect(Tok::LParen)?;
                let var = self.ident()?;
                self.expect(Tok::Assign)?;
                let init = self.expr()?;
                self.expect(Tok::Semi)?;
                let cond = self.expr()?;
                self.expect(Tok::Semi)?;
                let var2 = self.ident()?;
                if var2 != var {
                    return Err(self.err(format!(
                        "for-loop step must assign to `{var}`, found `{var2}`"
                    )));
                }
                self.expect(Tok::Assign)?;
                let step = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                return Ok(Stmt {
                    kind: StmtKind::For {
                        var,
                        init,
                        cond,
                        step,
                        body,
                    },
                    line,
                });
            }
            Tok::Return => {
                self.bump();
                let value = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                StmtKind::Return(value)
            }
            Tok::Output => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                StmtKind::Output(e)
            }
            Tok::Break => {
                self.bump();
                self.expect(Tok::Semi)?;
                StmtKind::Break
            }
            Tok::Continue => {
                self.bump();
                self.expect(Tok::Semi)?;
                StmtKind::Continue
            }
            Tok::Ident(name) => {
                // Could be: assignment, indexed store, or expression stmt.
                match &self.tokens[self.pos + 1].tok {
                    Tok::Assign => {
                        self.bump();
                        self.bump();
                        let value = self.expr()?;
                        self.expect(Tok::Semi)?;
                        StmtKind::Assign { name, value }
                    }
                    Tok::LBracket => {
                        // Lookahead cannot distinguish `a[i] = e;` from the
                        // expression `a[i] + 1;` without parsing the index.
                        let save = self.pos;
                        self.bump();
                        self.bump();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        if self.eat(&Tok::Assign) {
                            let value = self.expr()?;
                            self.expect(Tok::Semi)?;
                            StmtKind::StoreIndex {
                                array: name,
                                index,
                                value,
                            }
                        } else {
                            self.pos = save;
                            let e = self.expr()?;
                            self.expect(Tok::Semi)?;
                            StmtKind::ExprStmt(e)
                        }
                    }
                    _ => {
                        let e = self.expr()?;
                        self.expect(Tok::Semi)?;
                        StmtKind::ExprStmt(e)
                    }
                }
            }
            _ => {
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                StmtKind::ExprStmt(e)
            }
        };
        Ok(Stmt { kind, line })
    }

    // Expression parsing: precedence climbing.
    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::PipePipe => (BinaryOp::Or, 1),
                Tok::AmpAmp => (BinaryOp::And, 2),
                Tok::Pipe => (BinaryOp::BitOr, 3),
                Tok::Caret => (BinaryOp::BitXor, 4),
                Tok::Amp => (BinaryOp::BitAnd, 5),
                Tok::EqEq => (BinaryOp::Eq, 6),
                Tok::NotEq => (BinaryOp::Ne, 6),
                Tok::Lt => (BinaryOp::Lt, 7),
                Tok::Le => (BinaryOp::Le, 7),
                Tok::Gt => (BinaryOp::Gt, 7),
                Tok::Ge => (BinaryOp::Ge, 7),
                Tok::Shl => (BinaryOp::Shl, 8),
                Tok::Shr => (BinaryOp::Shr, 8),
                Tok::Plus => (BinaryOp::Add, 9),
                Tok::Minus => (BinaryOp::Sub, 9),
                Tok::Star => (BinaryOp::Mul, 10),
                Tok::Slash => (BinaryOp::Div, 10),
                Tok::Percent => (BinaryOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnaryOp::Neg,
                        expr: Box::new(e),
                    },
                    line,
                })
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnaryOp::Not,
                        expr: Box::new(e),
                    },
                    line,
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let kind = match self.bump() {
            Tok::Int(v) => ExprKind::IntLit(v),
            Tok::Float(v) => ExprKind::FloatLit(v),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                return Ok(e);
            }
            Tok::Ident(name) => match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(Tok::Comma)?;
                        }
                    }
                    ExprKind::Call { name, args }
                }
                Tok::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    ExprKind::Index {
                        array: name,
                        index: Box::new(index),
                    }
                }
                _ => ExprKind::Var(name),
            },
            other => {
                return Err(CompileError {
                    line,
                    message: format!("expected expression, found {}", other.describe()),
                })
            }
        };
        Ok(Expr { kind, line })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_function() {
        let p = parse("fn main() { }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert!(p.funcs[0].body.is_empty());
    }

    #[test]
    fn parses_globals() {
        let p = parse("global float grid[64]; global int idx[8]; fn main() {}").unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].size, 64);
        assert_eq!(p.globals[1].elem, Type::Int);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("fn main() { let x = 1 + 2 * 3; }").unwrap();
        let StmtKind::Let { init, .. } = &p.funcs[0].body[0].kind else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinaryOp::Add,
            rhs,
            ..
        } = &init.kind
        else {
            panic!("expected top-level add, got {init:?}")
        };
        assert!(matches!(
            rhs.kind,
            ExprKind::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn precedence_cmp_over_and() {
        let p = parse("fn main() { let x = 1; if (x < 2 && x > 0) { } }").unwrap();
        let StmtKind::If { cond, .. } = &p.funcs[0].body[1].kind else {
            panic!()
        };
        assert!(matches!(
            cond.kind,
            ExprKind::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn parses_for_loop() {
        let p = parse("fn main() { for (i = 0; i < 10; i = i + 1) { output i; } }").unwrap();
        let StmtKind::For { var, body, .. } = &p.funcs[0].body[0].kind else {
            panic!()
        };
        assert_eq!(var, "i");
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn for_step_var_must_match() {
        let e = parse("fn main() { for (i = 0; i < 10; j = j + 1) { } }").unwrap_err();
        assert!(e.message.contains("must assign to `i`"), "{e}");
    }

    #[test]
    fn indexed_store_vs_expression() {
        let p = parse("global int a[4]; fn main() { a[0] = 1; a[0]; }").unwrap();
        assert!(matches!(
            p.funcs[0].body[0].kind,
            StmtKind::StoreIndex { .. }
        ));
        assert!(matches!(p.funcs[0].body[1].kind, StmtKind::ExprStmt(_)));
    }

    #[test]
    fn else_if_chains() {
        let p = parse("fn main(x: int) { if (x < 0) { } else if (x > 0) { } else { } }").unwrap();
        let StmtKind::If { else_blk, .. } = &p.funcs[0].body[0].kind else {
            panic!()
        };
        let inner = else_blk.as_ref().unwrap();
        assert!(matches!(inner[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn call_with_args() {
        let p = parse("fn main() { let y = f(1, 2.5, g()); }").unwrap();
        let StmtKind::Let { init, .. } = &p.funcs[0].body[0].kind else {
            panic!()
        };
        let ExprKind::Call { name, args } = &init.kind else {
            panic!()
        };
        assert_eq!(name, "f");
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn error_reports_line() {
        let e = parse("fn main() {\n let x = ;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unary_chains() {
        let p = parse("fn main() { let x = --1; let y = 1; if (!(y < 2)) { } }").unwrap();
        assert_eq!(p.funcs[0].body.len(), 3);
    }

    #[test]
    fn return_void_and_value() {
        let p = parse("fn a() { return; } fn b() -> int { return 3; }").unwrap();
        assert!(matches!(p.funcs[0].body[0].kind, StmtKind::Return(None)));
        assert!(matches!(p.funcs[1].body[0].kind, StmtKind::Return(Some(_))));
    }
}

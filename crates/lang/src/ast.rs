//! MiniC abstract syntax tree.

/// Surface scalar types. Conditions have an internal `bool` type that has
/// no surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    Int,
    Float,
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    FloatLit(f64),
    Var(String),
    Index {
        array: String,
        index: Box<Expr>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinaryOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Call {
        name: String,
        args: Vec<Expr>,
    },
}

/// A statement with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let x = e;` or `let x: int = e;`
    Let {
        name: String,
        ty: Option<Type>,
        init: Expr,
    },
    /// `x = e;`
    Assign {
        name: String,
        value: Expr,
    },
    /// `a[i] = e;`
    StoreIndex {
        array: String,
        index: Expr,
        value: Expr,
    },
    /// `var float buf[n];` — stack array, size evaluated at runtime.
    LocalArray {
        name: String,
        elem: Type,
        size: Expr,
    },
    If {
        cond: Expr,
        then_blk: Vec<Stmt>,
        else_blk: Option<Vec<Stmt>>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    /// `for (i = init; cond; i = step) body` — `i` is implicitly declared.
    For {
        var: String,
        init: Expr,
        cond: Expr,
        step: Expr,
        body: Vec<Stmt>,
    },
    Return(Option<Expr>),
    Output(Expr),
    Break,
    Continue,
    ExprStmt(Expr),
}

/// `global float g[256];`
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    pub name: String,
    pub elem: Type,
    pub size: u64,
    pub line: u32,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    pub name: String,
    pub params: Vec<(String, Type)>,
    pub ret: Option<Type>,
    pub body: Vec<Stmt>,
    pub line: u32,
}

/// A whole MiniC program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub globals: Vec<GlobalDecl>,
    pub funcs: Vec<FuncDecl>,
}

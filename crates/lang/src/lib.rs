//! MiniC — a small C-like language compiled to PIR.
//!
//! The paper's users "only need to provide the source code of the target
//! program" (§4.1); the benchmarks are C/C++ mini-apps compiled to LLVM IR
//! with clang 3.4. MiniC plays clang's role here: the seven benchmark
//! kernels in `peppa-apps` are written in MiniC and compiled to PIR by
//! this crate.
//!
//! The language is deliberately small but covers what HPC kernels need:
//!
//! * `int` (i64) and `float` (f64) scalars, `bool`-typed conditions;
//! * global and stack arrays of either element type;
//! * `if`/`else`, `while`, C-style `for`, `break`/`continue`;
//! * functions with scalar parameters and results;
//! * arithmetic, comparisons, bitwise ops on `int` (`& | ^ << >>`, `%`),
//!   logical `&& || !` (non-short-circuiting — both sides evaluate);
//! * math builtins `sqrt sin cos exp log floor fabs fmin fmax min max
//!   abs i2f f2i`;
//! * `output e;` — appends a value to the program's observable output,
//!   the stream compared against the golden run for SDC detection.
//!
//! Compilation builds pruned SSA directly (Braun et al.'s algorithm,
//! adapted to block parameters), so the emitted PIR resembles optimized
//! LLVM IR — the form fault-injection studies run on — rather than the
//! load/store soup of `-O0`.
//!
//! ```
//! let src = r#"
//!     fn main(n: int) -> int {
//!         let sum = 0;
//!         for (i = 0; i < n; i = i + 1) { sum = sum + i * i; }
//!         output sum;
//!         return sum;
//!     }
//! "#;
//! let module = peppa_lang::compile(src, "sum_squares").unwrap();
//! assert!(module.num_instrs > 0);
//! ```

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{Program, Type};
pub use codegen::compile_program;
pub use parser::parse;

/// A compilation failure with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles MiniC source to a verified PIR module.
pub fn compile(source: &str, module_name: &str) -> Result<peppa_ir::Module, CompileError> {
    let program = parse(source)?;
    let module = compile_program(&program, module_name)?;
    peppa_ir::verify(&module).map_err(|e| CompileError {
        line: 0,
        message: format!("internal: generated IR failed verification: {e}"),
    })?;
    Ok(module)
}

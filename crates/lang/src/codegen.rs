//! MiniC → PIR code generation with on-the-fly SSA construction.
//!
//! Scalar variables are renamed into SSA form directly during generation
//! using Braun et al.'s algorithm ("Simple and Efficient Construction of
//! Static Single Assignment Form", CC'13), adapted to PIR's
//! block-parameter form: where the paper inserts a φ, we add a block
//! parameter and append the corresponding argument to every incoming
//! branch. Redundant (trivial) parameters are left in place — they are
//! semantically transparent and the VM executes branch argument passing
//! for free (block arguments are not instructions, so they do not perturb
//! instruction counts or the fault-site population).

use crate::ast::*;
use crate::CompileError;
use peppa_ir::{
    BinOp, BlockId, CastKind, FPred, FuncId, FunctionBuilder, IPred, Module, ModuleBuilder,
    Operand, Ty, UnOp,
};
use std::collections::HashMap;

/// Language-level value types (the surface types plus internal `bool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ly {
    Int,
    Float,
    Bool,
}

impl Ly {
    fn ir(self) -> Ty {
        match self {
            Ly::Int => Ty::I64,
            Ly::Float => Ty::F64,
            Ly::Bool => Ty::I1,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Ly::Int => "int",
            Ly::Float => "float",
            Ly::Bool => "bool",
        }
    }
}

fn ly_of(t: Type) -> Ly {
    match t {
        Type::Int => Ly::Int,
        Type::Float => Ly::Float,
    }
}

#[derive(Debug, Clone, Copy)]
struct Val {
    op: Operand,
    ty: Ly,
}

#[derive(Debug, Clone, Copy)]
enum Binding {
    Scalar(usize), // index into Cg::vars
    Array { base: Operand, elem: Ly },
}

/// Compiles a parsed program into a PIR module. The entry point is the
/// function named `main`; its parameters are the program's inputs.
pub fn compile_program(prog: &Program, module_name: &str) -> Result<Module, CompileError> {
    let mut mb = ModuleBuilder::new(module_name);

    let mut globals: HashMap<String, Binding> = HashMap::new();
    for g in &prog.globals {
        if globals.contains_key(&g.name) {
            return Err(err(g.line, format!("duplicate global `{}`", g.name)));
        }
        let base = mb.global(&g.name, g.size);
        globals.insert(
            g.name.clone(),
            Binding::Array {
                base,
                elem: ly_of(g.elem),
            },
        );
    }

    let mut sigs: HashMap<String, (FuncId, Vec<Ly>, Option<Ly>)> = HashMap::new();
    for f in &prog.funcs {
        if sigs.contains_key(&f.name) {
            return Err(err(f.line, format!("duplicate function `{}`", f.name)));
        }
        let ptys: Vec<Ty> = f.params.iter().map(|(_, t)| ly_of(*t).ir()).collect();
        let id = mb.declare(&f.name, &ptys, f.ret.map(|t| ly_of(t).ir()));
        sigs.insert(
            f.name.clone(),
            (
                id,
                f.params.iter().map(|(_, t)| ly_of(*t)).collect(),
                f.ret.map(ly_of),
            ),
        );
    }

    let main = sigs
        .get("main")
        .map(|(id, _, _)| *id)
        .ok_or_else(|| err(0, "program must define a `main` function".to_string()))?;

    for f in &prog.funcs {
        let (fid, _, _) = sigs[&f.name];
        let fb = mb.define(fid);
        let cg = Cg::new(fb, f, &globals, &sigs)?;
        cg.gen_body()?;
    }

    mb.set_entry(main);
    Ok(mb.finish())
}

fn err(line: u32, message: String) -> CompileError {
    CompileError { line, message }
}

struct Cg<'a, 'p> {
    fb: FunctionBuilder<'a>,
    func: &'p FuncDecl,
    globals: &'p HashMap<String, Binding>,
    sigs: &'p HashMap<String, (FuncId, Vec<Ly>, Option<Ly>)>,
    ret: Option<Ly>,

    /// Scalar variable table; `vars[i]` is the declared type.
    vars: Vec<Ly>,
    /// Lexical scopes mapping names to bindings.
    scopes: Vec<HashMap<String, Binding>>,

    // Braun-SSA bookkeeping, indexed by BlockId.
    defs: Vec<HashMap<usize, Operand>>,
    sealed: Vec<bool>,
    incomplete: Vec<Vec<(usize, Operand)>>,
    preds: Vec<Vec<BlockId>>,

    /// `(continue_target, break_target)` stack.
    loops: Vec<(BlockId, BlockId)>,
    /// False after `return` / `break` / `continue` until a new block.
    reachable: bool,
}

impl<'a, 'p> Cg<'a, 'p> {
    fn new(
        fb: FunctionBuilder<'a>,
        func: &'p FuncDecl,
        globals: &'p HashMap<String, Binding>,
        sigs: &'p HashMap<String, (FuncId, Vec<Ly>, Option<Ly>)>,
    ) -> Result<Self, CompileError> {
        let mut cg = Cg {
            fb,
            func,
            globals,
            sigs,
            ret: func.ret.map(ly_of),
            vars: Vec::new(),
            scopes: vec![HashMap::new()],
            defs: vec![HashMap::new()],
            sealed: vec![true],
            incomplete: vec![Vec::new()],
            preds: vec![Vec::new()],
            loops: Vec::new(),
            reachable: true,
        };
        for (i, (name, ty)) in func.params.iter().enumerate() {
            let var = cg.declare_scalar(name, ly_of(*ty), func.line)?;
            let p = cg.fb.param(i);
            cg.write_var(var, p);
        }
        Ok(cg)
    }

    // ---- SSA machinery ----------------------------------------------------

    fn cur(&self) -> BlockId {
        self.fb.current_block()
    }

    fn mk_block(&mut self) -> BlockId {
        let (b, _) = self.fb.new_block(&[]);
        self.defs.push(HashMap::new());
        self.sealed.push(false);
        self.incomplete.push(Vec::new());
        self.preds.push(Vec::new());
        b
    }

    fn write_var(&mut self, var: usize, value: Operand) {
        let b = self.cur();
        self.defs[b.0 as usize].insert(var, value);
    }

    fn read_var(&mut self, var: usize, block: BlockId) -> Operand {
        if let Some(v) = self.defs[block.0 as usize].get(&var) {
            return *v;
        }
        self.read_var_recursive(var, block)
    }

    fn read_var_recursive(&mut self, var: usize, block: BlockId) -> Operand {
        let bi = block.0 as usize;
        let val;
        if !self.sealed[bi] {
            let p = self.fb.add_block_param(block, self.vars[var].ir());
            self.incomplete[bi].push((var, p));
            val = p;
        } else if self.preds[bi].len() == 1 {
            let pred = self.preds[bi][0];
            val = self.read_var(var, pred);
        } else if self.preds[bi].is_empty() {
            // Entry (or unreachable) block and no definition: the scoping
            // rules make this impossible for user code; emit a typed zero
            // so internal invariants hold.
            val = zero_of(self.vars[var]);
        } else {
            let p = self.fb.add_block_param(block, self.vars[var].ir());
            self.defs[bi].insert(var, p); // break cycles before recursing
            let preds = self.preds[bi].clone();
            for pred in preds {
                let a = self.read_var(var, pred);
                self.fb.append_branch_arg(pred, block, a);
            }
            val = p;
        }
        self.defs[bi].insert(var, val);
        val
    }

    fn seal(&mut self, block: BlockId) {
        let bi = block.0 as usize;
        debug_assert!(!self.sealed[bi], "sealing twice");
        self.sealed[bi] = true;
        let pending = std::mem::take(&mut self.incomplete[bi]);
        for (var, _param) in pending {
            let preds = self.preds[bi].clone();
            for pred in preds {
                let a = self.read_var(var, pred);
                self.fb.append_branch_arg(pred, block, a);
            }
        }
    }

    /// Emits an unconditional edge to `target` if the current point is
    /// reachable.
    fn goto(&mut self, target: BlockId) {
        if self.reachable {
            let from = self.cur();
            self.fb.br(target, &[]);
            self.preds[target.0 as usize].push(from);
        }
    }

    fn cond_goto(&mut self, cond: Operand, t: BlockId, e: BlockId) {
        debug_assert!(self.reachable);
        let from = self.cur();
        self.fb.cond_br(cond, t, &[], e, &[]);
        self.preds[t.0 as usize].push(from);
        self.preds[e.0 as usize].push(from);
    }

    // ---- scopes --------------------------------------------------------------

    fn declare_scalar(&mut self, name: &str, ty: Ly, line: u32) -> Result<usize, CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack empty");
        if scope.contains_key(name) {
            return Err(err(
                line,
                format!("`{name}` already declared in this scope"),
            ));
        }
        let var = self.vars.len();
        self.vars.push(ty);
        scope.insert(name.to_string(), Binding::Scalar(var));
        Ok(var)
    }

    fn declare_array(
        &mut self,
        name: &str,
        base: Operand,
        elem: Ly,
        line: u32,
    ) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack empty");
        if scope.contains_key(name) {
            return Err(err(
                line,
                format!("`{name}` already declared in this scope"),
            ));
        }
        scope.insert(name.to_string(), Binding::Array { base, elem });
        Ok(())
    }

    fn lookup(&self, name: &str, line: u32) -> Result<Binding, CompileError> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Ok(*b);
            }
        }
        if let Some(b) = self.globals.get(name) {
            return Ok(*b);
        }
        Err(err(line, format!("unknown variable `{name}`")))
    }

    // ---- statements -----------------------------------------------------------

    fn gen_body(mut self) -> Result<(), CompileError> {
        self.gen_block(&self.func.body)?;
        if self.reachable {
            match self.ret {
                None => self.fb.ret(None),
                Some(_) => {
                    return Err(err(
                        self.func.line,
                        format!(
                            "function `{}` may finish without returning a value",
                            self.func.name
                        ),
                    ))
                }
            }
        }
        // Unreachable merge blocks still need structural terminators.
        for b in 0..self.fb.num_blocks() {
            let bid = BlockId(b as u32);
            if !self.fb.is_block_terminated(bid) {
                self.fb.switch_to(bid);
                let value = self.ret.map(zero_of);
                self.fb.ret(value);
            }
        }
        self.fb.finish();
        Ok(())
    }

    fn gen_block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            if !self.reachable {
                break; // statically unreachable code is dropped
            }
            self.gen_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn gen_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match &s.kind {
            StmtKind::Let { name, ty, init } => {
                let v = self.gen_expr(init)?;
                if v.ty == Ly::Bool {
                    return Err(err(s.line, "cannot store a bool in a variable".into()));
                }
                if let Some(want) = ty {
                    if ly_of(*want) != v.ty {
                        return Err(err(
                            s.line,
                            format!(
                                "`{name}` declared {} but initialized with {}",
                                ly_of(*want).name(),
                                v.ty.name()
                            ),
                        ));
                    }
                }
                let var = self.declare_scalar(name, v.ty, s.line)?;
                self.write_var(var, v.op);
            }
            StmtKind::Assign { name, value } => {
                let v = self.gen_expr(value)?;
                match self.lookup(name, s.line)? {
                    Binding::Scalar(var) => {
                        if self.vars[var] != v.ty {
                            return Err(err(
                                s.line,
                                format!(
                                    "assigning {} to {} variable `{name}`",
                                    v.ty.name(),
                                    self.vars[var].name()
                                ),
                            ));
                        }
                        self.write_var(var, v.op);
                    }
                    Binding::Array { .. } => {
                        return Err(err(s.line, format!("`{name}` is an array; index it")))
                    }
                }
            }
            StmtKind::StoreIndex {
                array,
                index,
                value,
            } => {
                let (base, elem) = match self.lookup(array, s.line)? {
                    Binding::Array { base, elem } => (base, elem),
                    Binding::Scalar(_) => {
                        return Err(err(s.line, format!("`{array}` is not an array")))
                    }
                };
                let idx = self.gen_expr(index)?;
                if idx.ty != Ly::Int {
                    return Err(err(s.line, "array index must be int".into()));
                }
                let v = self.gen_expr(value)?;
                if v.ty != elem {
                    return Err(err(
                        s.line,
                        format!(
                            "storing {} into {} array `{array}`",
                            v.ty.name(),
                            elem.name()
                        ),
                    ));
                }
                let addr = self.fb.gep(base, idx.op);
                self.fb.store(addr, v.op);
            }
            StmtKind::LocalArray { name, elem, size } => {
                let n = self.gen_expr(size)?;
                if n.ty != Ly::Int {
                    return Err(err(s.line, "array size must be int".into()));
                }
                let base = self.fb.alloca(n.op);
                self.declare_array(name, base, ly_of(*elem), s.line)?;
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.gen_bool(cond)?;
                let then_b = self.mk_block();
                let merge = self.mk_block();
                let else_b = if else_blk.is_some() {
                    self.mk_block()
                } else {
                    merge
                };
                self.cond_goto(c, then_b, else_b);
                self.seal(then_b);
                if else_blk.is_some() {
                    self.seal(else_b);
                }

                self.fb.switch_to(then_b);
                self.reachable = true;
                self.gen_block(then_blk)?;
                self.goto(merge);
                let then_reaches = self.reachable;

                let mut else_reaches = true;
                if let Some(eb) = else_blk {
                    self.fb.switch_to(else_b);
                    self.reachable = true;
                    self.gen_block(eb)?;
                    self.goto(merge);
                    else_reaches = self.reachable;
                }

                self.seal(merge);
                self.fb.switch_to(merge);
                self.reachable = then_reaches || else_reaches || else_blk.is_none();
            }
            StmtKind::While { cond, body } => {
                let header = self.mk_block();
                let body_b = self.mk_block();
                let exit = self.mk_block();
                self.goto(header);
                self.fb.switch_to(header);
                self.reachable = true;
                let c = self.gen_bool(cond)?;
                self.cond_goto(c, body_b, exit);
                self.seal(body_b);

                self.loops.push((header, exit));
                self.fb.switch_to(body_b);
                self.reachable = true;
                self.gen_block(body)?;
                self.goto(header);
                self.loops.pop();

                self.seal(header);
                self.seal(exit);
                self.fb.switch_to(exit);
                self.reachable = true;
            }
            StmtKind::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let iv = self.gen_expr(init)?;
                if iv.ty == Ly::Bool {
                    return Err(err(s.line, "loop variable cannot be bool".into()));
                }
                let vslot = self.declare_scalar(var, iv.ty, s.line)?;
                self.write_var(vslot, iv.op);

                let header = self.mk_block();
                let body_b = self.mk_block();
                let step_b = self.mk_block();
                let exit = self.mk_block();

                self.goto(header);
                self.fb.switch_to(header);
                self.reachable = true;
                let c = self.gen_bool(cond)?;
                self.cond_goto(c, body_b, exit);
                self.seal(body_b);

                self.loops.push((step_b, exit));
                self.fb.switch_to(body_b);
                self.reachable = true;
                self.gen_block(body)?;
                self.goto(step_b);
                self.loops.pop();

                self.seal(step_b);
                self.fb.switch_to(step_b);
                self.reachable = true;
                let sv = self.gen_expr(step)?;
                if sv.ty != iv.ty {
                    return Err(err(s.line, "loop step changes the variable's type".into()));
                }
                self.write_var(vslot, sv.op);
                self.goto(header);

                self.seal(header);
                self.seal(exit);
                self.fb.switch_to(exit);
                self.reachable = true;
                self.scopes.pop();
            }
            StmtKind::Return(value) => {
                match (value, self.ret) {
                    (Some(e), Some(want)) => {
                        let v = self.gen_expr(e)?;
                        if v.ty != want {
                            return Err(err(
                                s.line,
                                format!(
                                    "returning {} from a {} function",
                                    v.ty.name(),
                                    want.name()
                                ),
                            ));
                        }
                        self.fb.ret(Some(v.op));
                    }
                    (None, None) => self.fb.ret(None),
                    (Some(_), None) => {
                        return Err(err(s.line, "returning a value from a void function".into()))
                    }
                    (None, Some(_)) => return Err(err(s.line, "missing return value".into())),
                }
                self.reachable = false;
            }
            StmtKind::Output(e) => {
                let v = self.gen_expr(e)?;
                if v.ty == Ly::Bool {
                    return Err(err(s.line, "cannot output a bool".into()));
                }
                self.fb.output(v.op);
            }
            StmtKind::Break => {
                let (_, exit) = *self
                    .loops
                    .last()
                    .ok_or_else(|| err(s.line, "`break` outside loop".into()))?;
                self.goto(exit);
                self.reachable = false;
            }
            StmtKind::Continue => {
                let (cont, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| err(s.line, "`continue` outside loop".into()))?;
                self.goto(cont);
                self.reachable = false;
            }
            StmtKind::ExprStmt(e) => {
                if let ExprKind::Call { name, args } = &e.kind {
                    // Void calls are only legal as statements.
                    self.gen_call(name, args, e.line, true)?;
                } else {
                    self.gen_expr(e)?;
                }
            }
        }
        Ok(())
    }

    // ---- expressions ---------------------------------------------------------

    fn gen_bool(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        let v = self.gen_expr(e)?;
        if v.ty != Ly::Bool {
            return Err(err(
                e.line,
                format!("condition must be bool, found {}", v.ty.name()),
            ));
        }
        Ok(v.op)
    }

    fn gen_expr(&mut self, e: &Expr) -> Result<Val, CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Val {
                op: Operand::i64(*v),
                ty: Ly::Int,
            }),
            ExprKind::FloatLit(v) => Ok(Val {
                op: Operand::f64(*v),
                ty: Ly::Float,
            }),
            ExprKind::Var(name) => match self.lookup(name, e.line)? {
                Binding::Scalar(var) => {
                    let cur = self.cur();
                    Ok(Val {
                        op: self.read_var(var, cur),
                        ty: self.vars[var],
                    })
                }
                Binding::Array { .. } => {
                    Err(err(e.line, format!("array `{name}` used as a scalar")))
                }
            },
            ExprKind::Index { array, index } => {
                let (base, elem) = match self.lookup(array, e.line)? {
                    Binding::Array { base, elem } => (base, elem),
                    Binding::Scalar(_) => {
                        return Err(err(e.line, format!("`{array}` is not an array")))
                    }
                };
                let idx = self.gen_expr(index)?;
                if idx.ty != Ly::Int {
                    return Err(err(e.line, "array index must be int".into()));
                }
                let addr = self.fb.gep(base, idx.op);
                Ok(Val {
                    op: self.fb.load(addr, elem.ir()),
                    ty: elem,
                })
            }
            ExprKind::Unary { op, expr } => {
                let v = self.gen_expr(expr)?;
                match op {
                    UnaryOp::Neg => match v.ty {
                        Ly::Int => Ok(Val {
                            op: self.fb.sub(Operand::i64(0), v.op),
                            ty: Ly::Int,
                        }),
                        Ly::Float => Ok(Val {
                            op: self.fb.un(UnOp::FNeg, v.op),
                            ty: Ly::Float,
                        }),
                        Ly::Bool => Err(err(e.line, "cannot negate a bool".into())),
                    },
                    UnaryOp::Not => {
                        if v.ty != Ly::Bool {
                            return Err(err(e.line, "`!` needs a bool".into()));
                        }
                        Ok(Val {
                            op: self.fb.un(UnOp::Not, v.op),
                            ty: Ly::Bool,
                        })
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.gen_expr(lhs)?;
                let r = self.gen_expr(rhs)?;
                self.gen_binary(*op, l, r, e.line)
            }
            ExprKind::Call { name, args } => {
                let v = self.gen_call(name, args, e.line, false)?;
                Ok(v.expect("non-statement call returns a value"))
            }
        }
    }

    fn gen_binary(&mut self, op: BinaryOp, l: Val, r: Val, line: u32) -> Result<Val, CompileError> {
        use BinaryOp::*;
        let need_same = |l: Val, r: Val| -> Result<Ly, CompileError> {
            if l.ty != r.ty {
                return Err(err(
                    line,
                    format!(
                        "operand types differ: {} vs {} (use i2f/f2i)",
                        l.ty.name(),
                        r.ty.name()
                    ),
                ));
            }
            Ok(l.ty)
        };
        match op {
            Add | Sub | Mul | Div => {
                let ty = need_same(l, r)?;
                let ir = match (op, ty) {
                    (Add, Ly::Int) => BinOp::Add,
                    (Sub, Ly::Int) => BinOp::Sub,
                    (Mul, Ly::Int) => BinOp::Mul,
                    (Div, Ly::Int) => BinOp::SDiv,
                    (Add, Ly::Float) => BinOp::FAdd,
                    (Sub, Ly::Float) => BinOp::FSub,
                    (Mul, Ly::Float) => BinOp::FMul,
                    (Div, Ly::Float) => BinOp::FDiv,
                    _ => return Err(err(line, "arithmetic on bool".into())),
                };
                Ok(Val {
                    op: self.fb.bin(ir, l.op, r.op),
                    ty,
                })
            }
            Rem | BitAnd | BitOr | BitXor | Shl | Shr => {
                if l.ty != Ly::Int || r.ty != Ly::Int {
                    return Err(err(
                        line,
                        "bitwise/modulo operators need int operands".into(),
                    ));
                }
                let ir = match op {
                    Rem => BinOp::SRem,
                    BitAnd => BinOp::And,
                    BitOr => BinOp::Or,
                    BitXor => BinOp::Xor,
                    Shl => BinOp::Shl,
                    Shr => BinOp::AShr,
                    _ => unreachable!(),
                };
                Ok(Val {
                    op: self.fb.bin(ir, l.op, r.op),
                    ty: Ly::Int,
                })
            }
            Lt | Le | Gt | Ge | Eq | Ne => {
                let ty = need_same(l, r)?;
                let v = match ty {
                    Ly::Int => {
                        let pred = match op {
                            Lt => IPred::Slt,
                            Le => IPred::Sle,
                            Gt => IPred::Sgt,
                            Ge => IPred::Sge,
                            Eq => IPred::Eq,
                            Ne => IPred::Ne,
                            _ => unreachable!(),
                        };
                        self.fb.icmp(pred, l.op, r.op)
                    }
                    Ly::Float => {
                        let pred = match op {
                            Lt => FPred::Olt,
                            Le => FPred::Ole,
                            Gt => FPred::Ogt,
                            Ge => FPred::Oge,
                            Eq => FPred::Oeq,
                            Ne => FPred::One,
                            _ => unreachable!(),
                        };
                        self.fb.fcmp(pred, l.op, r.op)
                    }
                    Ly::Bool => return Err(err(line, "cannot compare bools".into())),
                };
                Ok(Val {
                    op: v,
                    ty: Ly::Bool,
                })
            }
            And | Or => {
                if l.ty != Ly::Bool || r.ty != Ly::Bool {
                    return Err(err(line, "`&&`/`||` need bool operands".into()));
                }
                let ir = if op == And { BinOp::And } else { BinOp::Or };
                Ok(Val {
                    op: self.fb.bin(ir, l.op, r.op),
                    ty: Ly::Bool,
                })
            }
        }
    }

    fn gen_call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: u32,
        statement: bool,
    ) -> Result<Option<Val>, CompileError> {
        // Builtins.
        let unary_float =
            |me: &mut Self, op: UnOp, args: &[Expr]| -> Result<Option<Val>, CompileError> {
                if args.len() != 1 {
                    return Err(err(line, format!("`{name}` takes one argument")));
                }
                let a = me.gen_expr(&args[0])?;
                if a.ty != Ly::Float {
                    return Err(err(line, format!("`{name}` needs a float argument")));
                }
                Ok(Some(Val {
                    op: me.fb.un(op, a.op),
                    ty: Ly::Float,
                }))
            };
        match name {
            "sqrt" => return unary_float(self, UnOp::Sqrt, args),
            "sin" => return unary_float(self, UnOp::Sin, args),
            "cos" => return unary_float(self, UnOp::Cos, args),
            "exp" => return unary_float(self, UnOp::Exp, args),
            "log" => return unary_float(self, UnOp::Log, args),
            "floor" => return unary_float(self, UnOp::Floor, args),
            "fabs" => return unary_float(self, UnOp::FAbs, args),
            "i2f" => {
                if args.len() != 1 {
                    return Err(err(line, "`i2f` takes one argument".into()));
                }
                let a = self.gen_expr(&args[0])?;
                if a.ty != Ly::Int {
                    return Err(err(line, "`i2f` needs an int".into()));
                }
                let v = self.fb.cast(CastKind::SiToFp, a.op, Ty::F64);
                return Ok(Some(Val {
                    op: v,
                    ty: Ly::Float,
                }));
            }
            "f2i" => {
                if args.len() != 1 {
                    return Err(err(line, "`f2i` takes one argument".into()));
                }
                let a = self.gen_expr(&args[0])?;
                if a.ty != Ly::Float {
                    return Err(err(line, "`f2i` needs a float".into()));
                }
                let v = self.fb.cast(CastKind::FpToSi, a.op, Ty::I64);
                return Ok(Some(Val { op: v, ty: Ly::Int }));
            }
            "abs" => {
                if args.len() != 1 {
                    return Err(err(line, "`abs` takes one argument".into()));
                }
                let a = self.gen_expr(&args[0])?;
                if a.ty != Ly::Int {
                    return Err(err(line, "`abs` needs an int (use fabs for floats)".into()));
                }
                let neg = self.fb.sub(Operand::i64(0), a.op);
                let isneg = self.fb.icmp(IPred::Slt, a.op, Operand::i64(0));
                let v = self.fb.select(isneg, neg, a.op);
                return Ok(Some(Val { op: v, ty: Ly::Int }));
            }
            "min" | "max" | "fmin" | "fmax" => {
                if args.len() != 2 {
                    return Err(err(line, format!("`{name}` takes two arguments")));
                }
                let a = self.gen_expr(&args[0])?;
                let b = self.gen_expr(&args[1])?;
                let is_float = name.starts_with('f');
                let want = if is_float { Ly::Float } else { Ly::Int };
                if a.ty != want || b.ty != want {
                    return Err(err(
                        line,
                        format!("`{name}` needs two {} arguments", want.name()),
                    ));
                }
                let lt = if is_float {
                    self.fb.fcmp(FPred::Olt, a.op, b.op)
                } else {
                    self.fb.icmp(IPred::Slt, a.op, b.op)
                };
                let v = if name.ends_with("min") {
                    self.fb.select(lt, a.op, b.op)
                } else {
                    self.fb.select(lt, b.op, a.op)
                };
                return Ok(Some(Val { op: v, ty: want }));
            }
            _ => {}
        }

        let (fid, ptys, ret) = self
            .sigs
            .get(name)
            .cloned()
            .ok_or_else(|| err(line, format!("unknown function `{name}`")))?;
        if args.len() != ptys.len() {
            return Err(err(
                line,
                format!(
                    "`{name}` takes {} arguments, got {}",
                    ptys.len(),
                    args.len()
                ),
            ));
        }
        let mut ops = Vec::with_capacity(args.len());
        for (a, want) in args.iter().zip(&ptys) {
            let v = self.gen_expr(a)?;
            if v.ty != *want {
                return Err(err(
                    a.line,
                    format!(
                        "argument type mismatch: expected {}, got {}",
                        want.name(),
                        v.ty.name()
                    ),
                ));
            }
            ops.push(v.op);
        }
        let result = self.fb.call(fid, &ops);
        match (result, ret) {
            (Some(op), Some(ty)) => Ok(Some(Val { op, ty })),
            (None, None) => {
                if !statement {
                    return Err(err(
                        line,
                        format!("void function `{name}` used in an expression"),
                    ));
                }
                Ok(None)
            }
            _ => unreachable!("builder/result mismatch"),
        }
    }
}

fn zero_of(ty: Ly) -> Operand {
    match ty {
        Ly::Int => Operand::i64(0),
        Ly::Float => Operand::f64(0.0),
        Ly::Bool => Operand::bool(false),
    }
}

//! MiniC tokens.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and identifiers
    Int(i64),
    Float(f64),
    Ident(String),
    // Keywords
    Fn,
    Let,
    Var,
    Global,
    If,
    Else,
    While,
    For,
    Return,
    Output,
    Break,
    Continue,
    TyInt,
    TyFloat,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Arrow,
    // Operators
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    Bang,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    Eof,
}

impl Tok {
    /// Human-readable name for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Int(v) => format!("integer literal {v}"),
            Tok::Float(v) => format!("float literal {v}"),
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            Tok::Fn => "fn",
            Tok::Let => "let",
            Tok::Var => "var",
            Tok::Global => "global",
            Tok::If => "if",
            Tok::Else => "else",
            Tok::While => "while",
            Tok::For => "for",
            Tok::Return => "return",
            Tok::Output => "output",
            Tok::Break => "break",
            Tok::Continue => "continue",
            Tok::TyInt => "int",
            Tok::TyFloat => "float",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Comma => ",",
            Tok::Semi => ";",
            Tok::Colon => ":",
            Tok::Arrow => "->",
            Tok::Assign => "=",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Caret => "^",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::AmpAmp => "&&",
            Tok::PipePipe => "||",
            Tok::Bang => "!",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Int(_) | Tok::Float(_) | Tok::Ident(_) | Tok::Eof => unreachable!(),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: u32,
}

//! MiniC lexer.

use crate::token::{SpannedTok, Tok};
use crate::CompileError;

/// Tokenizes MiniC source. Supports `//` line comments and `/* */` block
/// comments.
pub fn lex(source: &str) -> Result<Vec<SpannedTok>, CompileError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let err = |line: u32, msg: String| CompileError { line, message: msg };

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(start, "unterminated block comment".into()));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &source[start..i];
                let tok = if is_float {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| err(line, format!("bad float literal `{text}`")))?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| err(line, format!("bad int literal `{text}`")))?,
                    )
                };
                out.push(SpannedTok { tok, line });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &source[start..i];
                let tok = match word {
                    "fn" => Tok::Fn,
                    "let" => Tok::Let,
                    "var" => Tok::Var,
                    "global" => Tok::Global,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "return" => Tok::Return,
                    "output" => Tok::Output,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "int" => Tok::TyInt,
                    "float" => Tok::TyFloat,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(SpannedTok { tok, line });
            }
            _ => {
                // Two-byte operator lookahead must not slice mid-way
                // through a multi-byte UTF-8 character.
                let two = if i + 1 < bytes.len() && bytes[i].is_ascii() && bytes[i + 1].is_ascii() {
                    &source[i..i + 2]
                } else {
                    ""
                };
                let (tok, len) = match two {
                    "->" => (Tok::Arrow, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "&&" => (Tok::AmpAmp, 2),
                    "||" => (Tok::PipePipe, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::NotEq, 2),
                    _ => {
                        let t = match c {
                            b'(' => Tok::LParen,
                            b')' => Tok::RParen,
                            b'{' => Tok::LBrace,
                            b'}' => Tok::RBrace,
                            b'[' => Tok::LBracket,
                            b']' => Tok::RBracket,
                            b',' => Tok::Comma,
                            b';' => Tok::Semi,
                            b':' => Tok::Colon,
                            b'=' => Tok::Assign,
                            b'+' => Tok::Plus,
                            b'-' => Tok::Minus,
                            b'*' => Tok::Star,
                            b'/' => Tok::Slash,
                            b'%' => Tok::Percent,
                            b'&' => Tok::Amp,
                            b'|' => Tok::Pipe,
                            b'^' => Tok::Caret,
                            b'!' => Tok::Bang,
                            b'<' => Tok::Lt,
                            b'>' => Tok::Gt,
                            other => {
                                return Err(err(
                                    line,
                                    format!("unexpected character `{}`", other as char),
                                ))
                            }
                        };
                        (t, 1)
                    }
                };
                out.push(SpannedTok { tok, line });
                i += len;
            }
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("fn foo int floaty"),
            vec![
                Tok::Fn,
                Tok::Ident("foo".into()),
                Tok::TyInt,
                Tok::Ident("floaty".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.5 1e3 2.5e-2 7"),
            vec![
                Tok::Int(42),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Float(0.025),
                Tok::Int(7),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn int_then_method_like_dot_is_error_free() {
        // `1.` without digits stays an int followed by something else.
        let r = lex("1.");
        // '.' is not a valid token on its own.
        assert!(r.is_err());
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("-> << >> && || <= >= == !="),
            vec![
                Tok::Arrow,
                Tok::Shl,
                Tok::Shr,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_lines_counted() {
        let ts = lex("// one\n/* two\nthree */ x").unwrap();
        assert_eq!(ts[0].tok, Tok::Ident("x".into()));
        assert_eq!(ts[0].line, 3);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn line_numbers() {
        let ts = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = ts.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }
}

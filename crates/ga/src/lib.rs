//! The genetic search engine of PEPPA-X (§2.4, §4.2.4).
//!
//! A candidate solution ("genome") is a program input: a vector of
//! numeric arguments. Following the paper:
//!
//! * **mutation rate 0.4** — mutation perturbs *one* argument by a value
//!   drawn uniformly from ±10% of its current magnitude;
//! * **crossover rate 0.05** — crossover picks a partner and swaps *one*
//!   argument between the two inputs;
//! * **roulette selection** — parents are drawn with probability
//!   proportional to fitness;
//! * survivors are selected from parents ∪ offspring by fitness, so poor
//!   members are "gradually eliminated".
//!
//! The engine is generic over the fitness function; PEPPA-X plugs in the
//! dynamic SDC-vulnerability potential (Eq. 2), the baseline would plug
//! in a statistical-FI measurement.

use peppa_stats::Pcg64;
use serde::{Deserialize, Serialize};

/// Valid range of one input argument.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArgBounds {
    pub lo: f64,
    pub hi: f64,
    /// Integer-valued argument: genomes are kept on whole numbers.
    pub integer: bool,
}

impl ArgBounds {
    pub fn float(lo: f64, hi: f64) -> ArgBounds {
        ArgBounds {
            lo,
            hi,
            integer: false,
        }
    }

    pub fn int(lo: i64, hi: i64) -> ArgBounds {
        ArgBounds {
            lo: lo as f64,
            hi: hi as f64,
            integer: true,
        }
    }

    /// Clamps (and rounds, for integer arguments) a raw value into range.
    pub fn clamp(&self, x: f64) -> f64 {
        let c = x.clamp(self.lo, self.hi);
        if self.integer {
            c.round().clamp(self.lo, self.hi)
        } else {
            c
        }
    }

    /// Uniform sample from the range.
    pub fn sample(&self, rng: &mut Pcg64) -> f64 {
        self.clamp(rng.gen_range_f64(self.lo, self.hi))
    }
}

/// Engine configuration. Defaults follow the paper's §4.2.4 rates.
#[derive(Debug, Clone)]
pub struct GaConfig {
    pub population: usize,
    pub mutation_rate: f64,
    pub crossover_rate: f64,
    pub seed: u64,
    pub bounds: Vec<ArgBounds>,
}

impl GaConfig {
    /// Paper defaults: mutation 0.4, crossover 0.05.
    pub fn paper_defaults(bounds: Vec<ArgBounds>, seed: u64) -> GaConfig {
        GaConfig {
            population: 20,
            mutation_rate: 0.4,
            crossover_rate: 0.05,
            seed,
            bounds,
        }
    }
}

/// Fitness oracle: higher is fitter. Implementations may fail an
/// evaluation (e.g. the input crashes the golden run); failed genomes get
/// fitness `f64::NEG_INFINITY` and die out.
pub trait Fitness {
    fn eval(&mut self, genome: &[f64]) -> Option<f64>;
}

impl<F: FnMut(&[f64]) -> Option<f64>> Fitness for F {
    fn eval(&mut self, genome: &[f64]) -> Option<f64> {
        self(genome)
    }
}

/// One member of the population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Individual {
    pub genome: Vec<f64>,
    pub fitness: f64,
}

/// A generational genetic-algorithm engine.
#[derive(Debug, Clone)]
pub struct GeneticEngine {
    cfg: GaConfig,
    rng: Pcg64,
    population: Vec<Individual>,
    best: Option<Individual>,
    generation: u64,
    evaluations: u64,
}

impl GeneticEngine {
    /// Creates the engine and evaluates a random initial population.
    pub fn new(cfg: GaConfig, fit: &mut dyn Fitness) -> GeneticEngine {
        assert!(cfg.population >= 2, "population must be at least 2");
        assert!(
            !cfg.bounds.is_empty(),
            "genome must have at least one argument"
        );
        let mut rng = Pcg64::new(cfg.seed);
        let mut engine = GeneticEngine {
            population: Vec::with_capacity(cfg.population),
            best: None,
            generation: 0,
            evaluations: 0,
            rng,
            cfg,
        };
        rng = engine.rng.clone();
        for _ in 0..engine.cfg.population {
            let genome: Vec<f64> = engine
                .cfg
                .bounds
                .iter()
                .map(|b| b.sample(&mut rng))
                .collect();
            engine.push_evaluated(genome, fit);
        }
        engine.rng = rng;
        engine
    }

    fn push_evaluated(&mut self, genome: Vec<f64>, fit: &mut dyn Fitness) {
        self.evaluations += 1;
        let fitness = fit.eval(&genome).unwrap_or(f64::NEG_INFINITY);
        let ind = Individual { genome, fitness };
        if self
            .best
            .as_ref()
            .map(|b| ind.fitness > b.fitness)
            .unwrap_or(ind.fitness > f64::NEG_INFINITY)
        {
            self.best = Some(ind.clone());
        }
        self.population.push(ind);
    }

    /// Roulette selection: probability proportional to fitness, shifted
    /// so the weakest member still has a small chance.
    fn roulette(&mut self) -> usize {
        let finite: Vec<(usize, f64)> = self
            .population
            .iter()
            .enumerate()
            .filter(|(_, i)| i.fitness.is_finite())
            .map(|(k, i)| (k, i.fitness))
            .collect();
        if finite.is_empty() {
            return self.rng.gen_index(self.population.len());
        }
        let min = finite.iter().map(|&(_, f)| f).fold(f64::INFINITY, f64::min);
        let weights: Vec<f64> = finite.iter().map(|&(_, f)| f - min + 1e-9).collect();
        let total: f64 = weights.iter().sum();
        let mut spin = self.rng.gen_f64() * total;
        for (k, w) in finite.iter().map(|&(k, _)| k).zip(&weights) {
            spin -= w;
            if spin <= 0.0 {
                return k;
            }
        }
        finite.last().map(|&(k, _)| k).unwrap()
    }

    /// Mutation (§4.2.4): one argument gets a delta uniform in ±10% of
    /// its current value; zero-valued arguments jitter within ±1% of
    /// their range so they can escape zero.
    fn mutate(&mut self, genome: &mut [f64]) {
        let i = self.rng.gen_index(genome.len());
        let b = self.cfg.bounds[i];
        let magnitude = genome[i].abs();
        let scale = if magnitude > 0.0 {
            0.1 * magnitude
        } else {
            0.01 * (b.hi - b.lo)
        };
        let delta = self.rng.gen_range_f64(-scale, scale);
        genome[i] = b.clamp(genome[i] + delta);
        if b.integer && genome[i] == (genome[i] + delta).clamp(b.lo, b.hi).round() {
            // Integer args may round back to the same value; force at
            // least a unit step half the time so mutation is not a no-op.
            if self.rng.gen_bool(0.5) {
                let step = if delta >= 0.0 { 1.0 } else { -1.0 };
                genome[i] = b.clamp(genome[i] + step);
            }
        }
    }

    /// Crossover (§4.2.4): swaps one argument between two genomes.
    fn crossover(a: &mut [f64], b: &mut [f64], idx: usize) {
        std::mem::swap(&mut a[idx], &mut b[idx]);
    }

    /// Advances one generation, returning the generation's best fitness.
    pub fn step(&mut self, fit: &mut dyn Fitness) -> f64 {
        let lambda = self.cfg.population;
        let mut offspring: Vec<Vec<f64>> = Vec::with_capacity(lambda);
        while offspring.len() < lambda {
            let p = self.roulette();
            let mut child = self.population[p].genome.clone();
            if self.rng.gen_bool(self.cfg.crossover_rate) {
                let q = self.roulette();
                let mut partner = self.population[q].genome.clone();
                let idx = self.rng.gen_index(child.len());
                Self::crossover(&mut child, &mut partner, idx);
                if offspring.len() + 1 < lambda {
                    offspring.push(partner);
                }
            }
            if self.rng.gen_bool(self.cfg.mutation_rate) {
                self.mutate(&mut child);
            }
            offspring.push(child);
        }

        for genome in offspring {
            self.push_evaluated(genome, fit);
        }

        // (μ+λ) truncation: keep the fittest `population` members.
        self.population.sort_by(|a, b| {
            b.fitness
                .partial_cmp(&a.fitness)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self.population.truncate(self.cfg.population);
        self.generation += 1;
        self.population
            .first()
            .map(|i| i.fitness)
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// Runs `generations` steps.
    pub fn run(&mut self, fit: &mut dyn Fitness, generations: u64) -> Individual {
        for _ in 0..generations {
            self.step(fit);
        }
        self.best().clone()
    }

    /// Best individual seen so far (across all generations).
    pub fn best(&self) -> &Individual {
        self.best
            .as_ref()
            .expect("population initialized with at least one finite member")
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total fitness evaluations performed, the budget unit compared
    /// against the baseline's FI campaigns.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Current population, fittest first after a `step`.
    pub fn population(&self) -> &[Individual] {
        &self.population
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_bounds(n: usize) -> Vec<ArgBounds> {
        (0..n).map(|_| ArgBounds::float(-10.0, 10.0)).collect()
    }

    /// Maximize -(x-3)^2 - (y+1)^2: optimum at (3, -1).
    fn sphere(genome: &[f64]) -> Option<f64> {
        Some(-((genome[0] - 3.0).powi(2) + (genome[1] + 1.0).powi(2)))
    }

    #[test]
    fn converges_to_known_optimum() {
        let cfg = GaConfig {
            population: 30,
            mutation_rate: 0.6,
            crossover_rate: 0.1,
            seed: 42,
            bounds: sphere_bounds(2),
        };
        let mut fit = sphere;
        let mut ga = GeneticEngine::new(cfg, &mut fit);
        let best = ga.run(&mut fit, 150);
        assert!((best.genome[0] - 3.0).abs() < 0.5, "x = {}", best.genome[0]);
        assert!((best.genome[1] + 1.0).abs() < 0.5, "y = {}", best.genome[1]);
    }

    #[test]
    fn best_fitness_monotone_nondecreasing() {
        let cfg = GaConfig::paper_defaults(sphere_bounds(2), 7);
        let mut fit = sphere;
        let mut ga = GeneticEngine::new(cfg, &mut fit);
        let mut last = ga.best().fitness;
        for _ in 0..50 {
            ga.step(&mut fit);
            let now = ga.best().fitness;
            assert!(now >= last, "best regressed: {now} < {last}");
            last = now;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let cfg = GaConfig::paper_defaults(sphere_bounds(2), 99);
            let mut fit = sphere;
            let mut ga = GeneticEngine::new(cfg, &mut fit);
            ga.run(&mut fit, 40).genome
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bounds_always_respected() {
        let bounds = vec![ArgBounds::float(0.0, 1.0), ArgBounds::int(5, 10)];
        let cfg = GaConfig {
            population: 10,
            mutation_rate: 1.0,
            crossover_rate: 0.5,
            seed: 3,
            bounds,
        };
        let mut fit = |g: &[f64]| Some(g[0] + g[1]);
        let mut ga = GeneticEngine::new(cfg, &mut fit);
        for _ in 0..30 {
            ga.step(&mut fit);
            for ind in ga.population() {
                assert!((0.0..=1.0).contains(&ind.genome[0]), "{:?}", ind.genome);
                assert!((5.0..=10.0).contains(&ind.genome[1]));
                assert_eq!(ind.genome[1].fract(), 0.0, "integer arg drifted off-grid");
            }
        }
    }

    #[test]
    fn failed_evaluations_die_out() {
        // Fitness fails for genome[0] < 0; survivors should all be >= 0.
        let bounds = vec![ArgBounds::float(-1.0, 1.0)];
        let cfg = GaConfig {
            population: 12,
            mutation_rate: 0.5,
            crossover_rate: 0.1,
            seed: 8,
            bounds,
        };
        let mut fit = |g: &[f64]| if g[0] < 0.0 { None } else { Some(g[0]) };
        let mut ga = GeneticEngine::new(cfg, &mut fit);
        for _ in 0..20 {
            ga.step(&mut fit);
        }
        let finite = ga
            .population()
            .iter()
            .filter(|i| i.fitness.is_finite())
            .count();
        assert!(finite > 0);
        assert!(ga.best().fitness >= 0.0);
    }

    #[test]
    fn evaluation_budget_accounting() {
        let cfg = GaConfig {
            population: 10,
            ..GaConfig::paper_defaults(sphere_bounds(2), 1)
        };
        let mut fit = sphere;
        let mut ga = GeneticEngine::new(cfg, &mut fit);
        assert_eq!(ga.evaluations(), 10);
        ga.step(&mut fit);
        // One generation adds `population` offspring (crossover may round
        // slightly over, never under).
        assert!(ga.evaluations() >= 20);
    }

    #[test]
    fn crossover_swaps_single_argument() {
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![9.0, 8.0, 7.0];
        GeneticEngine::crossover(&mut a, &mut b, 1);
        assert_eq!(a, vec![1.0, 8.0, 3.0]);
        assert_eq!(b, vec![9.0, 2.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "population must be at least 2")]
    fn rejects_tiny_population() {
        let cfg = GaConfig {
            population: 1,
            ..GaConfig::paper_defaults(sphere_bounds(1), 1)
        };
        let mut fit = |_: &[f64]| Some(0.0);
        GeneticEngine::new(cfg, &mut fit);
    }
}

//! Protection planning: measure per-instruction SDC probabilities with
//! the reference input, then knapsack-select the duplication set (§6).
//!
//! Cost model: duplicating instruction `i` re-executes it once per
//! dynamic occurrence, so its cost is `N_i` (its execution count under
//! the planning input). The overhead budget for level `L` is `L ×
//! N_total` — e.g. 30% overhead admits duplications totalling 30% of the
//! program's dynamic instructions. (The compare-and-branch overhead is
//! amortizable by checker hoisting in real deployments [18, 28]; the
//! knapsack abstraction in the paper likewise prices an instruction by
//! its execution count.)

use crate::knapsack::{knapsack, Item};
use peppa_inject::campaign::CampaignError;
use peppa_inject::{per_instruction_sdc, PerInstrConfig, PerInstrResult};
use peppa_ir::{InstrId, Module};
use peppa_vm::{ExecLimits, Vm};
use serde::{Deserialize, Serialize};

/// The knapsack's output for one protection level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtectionPlan {
    /// Overhead level (0.3 / 0.5 / 0.7 in the paper).
    pub level: f64,
    /// Instructions selected for duplication.
    pub selected: Vec<InstrId>,
    /// Expected SDC coverage: selected SDC mass / total SDC mass, as
    /// estimated from the planning input's measurements.
    pub expected_coverage: f64,
    /// Fraction of dynamic instructions the duplications re-execute.
    pub actual_overhead: f64,
}

/// Measures per-instruction SDC probabilities for planning. Exposed so
/// several levels can reuse one (expensive) measurement.
pub fn measure_for_planning(
    module: &Module,
    input: &[f64],
    limits: ExecLimits,
    trials_per_instr: u32,
    seed: u64,
    threads: usize,
) -> Result<PerInstrResult, CampaignError> {
    let cfg = PerInstrConfig {
        trials_per_instr,
        seed,
        hang_factor: 8,
        threads,
    };
    per_instruction_sdc(module, input, limits, cfg, None)
}

/// Builds the protection plan for one overhead level from a prior
/// measurement.
pub fn plan_from_measurement(
    module: &Module,
    input: &[f64],
    limits: ExecLimits,
    measured: &PerInstrResult,
    level: f64,
) -> ProtectionPlan {
    assert!((0.0..=1.0).contains(&level), "level must be a fraction");
    let vm = Vm::new(module, limits);
    let golden = vm.run_numeric(input, None);
    let total_dynamic = golden.profile.dynamic.max(1);

    // Candidate items: protectable instructions with a measured
    // probability and a non-zero footprint.
    let mut sids: Vec<InstrId> = Vec::new();
    let mut items: Vec<Item> = Vec::new();
    let mut total_mass = 0.0f64;
    for (fid, ins) in module.all_instrs() {
        let _ = fid;
        let sid = ins.sid;
        if !crate::duplicate::protectable(&ins.op) {
            continue;
        }
        let Some(p) = measured.sdc_prob[sid.0 as usize] else {
            continue;
        };
        let n = golden.profile.exec_counts[sid.0 as usize];
        if n == 0 {
            continue;
        }
        let mass = p * n as f64;
        total_mass += mass;
        sids.push(sid);
        items.push(Item {
            benefit: mass,
            cost: n,
        });
    }

    let budget = (level * total_dynamic as f64) as u64;
    let chosen = knapsack(&items, budget, 100_000);

    let selected: Vec<InstrId> = chosen.iter().map(|&k| sids[k]).collect();
    let covered_mass: f64 = chosen.iter().map(|&k| items[k].benefit).sum();
    let used_cost: u64 = chosen.iter().map(|&k| items[k].cost).sum();

    ProtectionPlan {
        level,
        selected,
        expected_coverage: if total_mass > 0.0 {
            covered_mass / total_mass
        } else {
            0.0
        },
        actual_overhead: used_cost as f64 / total_dynamic as f64,
    }
}

/// Convenience: measure + plan in one call.
pub fn plan_protection(
    module: &Module,
    input: &[f64],
    limits: ExecLimits,
    level: f64,
    trials_per_instr: u32,
    seed: u64,
    threads: usize,
) -> Result<ProtectionPlan, CampaignError> {
    let measured = measure_for_planning(module, input, limits, trials_per_instr, seed, threads)?;
    Ok(plan_from_measurement(
        module, input, limits, &measured, level,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        fn main(n: int) {
            let acc = 0;
            let guard = 0;
            for (i = 0; i < n; i = i + 1) {
                acc = acc + i * 7;           // high SDC mass
                guard = min(guard + 1, 3);   // heavily masked
            }
            output acc;
            output guard;
        }
    "#;

    fn module() -> Module {
        peppa_lang::compile(SRC, "plan").unwrap()
    }

    #[test]
    fn higher_level_covers_more() {
        let m = module();
        let measured = measure_for_planning(&m, &[20.0], ExecLimits::default(), 25, 3, 0).unwrap();
        let p30 = plan_from_measurement(&m, &[20.0], ExecLimits::default(), &measured, 0.3);
        let p70 = plan_from_measurement(&m, &[20.0], ExecLimits::default(), &measured, 0.7);
        assert!(p70.expected_coverage >= p30.expected_coverage);
        assert!(p70.selected.len() >= p30.selected.len());
        assert!(p30.actual_overhead <= 0.3 + 1e-9);
        assert!(p70.actual_overhead <= 0.7 + 1e-9);
    }

    #[test]
    fn expected_coverage_in_unit_interval() {
        let m = module();
        let p = plan_protection(&m, &[16.0], ExecLimits::default(), 0.5, 20, 9, 0).unwrap();
        assert!((0.0..=1.0).contains(&p.expected_coverage), "{p:?}");
        assert!(!p.selected.is_empty());
    }

    #[test]
    fn zero_level_selects_nothing() {
        let m = module();
        let p = plan_protection(&m, &[16.0], ExecLimits::default(), 0.0, 10, 9, 0).unwrap();
        assert!(p.selected.is_empty());
        assert_eq!(p.expected_coverage, 0.0);
    }

    #[test]
    fn full_budget_prefers_high_mass_instructions() {
        let m = module();
        let measured = measure_for_planning(&m, &[20.0], ExecLimits::default(), 25, 3, 0).unwrap();
        let p = plan_from_measurement(&m, &[20.0], ExecLimits::default(), &measured, 0.9);
        // The accumulator chain (high mass) must be in the selection.
        assert!(p.expected_coverage > 0.5, "{}", p.expected_coverage);
    }
}

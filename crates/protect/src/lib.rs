//! Selective instruction duplication (§6): the popular compile-time SDC
//! protection that PEPPA-X stress-tests.
//!
//! The technique assumes a small set of instructions carries most of the
//! SDC probability. Given per-instruction SDC probabilities `P_i`
//! (measured with the *default reference input*, as all prior work does)
//! and duplication costs proportional to dynamic execution counts `N_i`,
//! a 0-1 knapsack picks the best set to duplicate under a performance-
//! overhead budget (30% / 50% / 70% in the paper's Figure 9).
//!
//! Protection is applied as an IR transform: each selected instruction is
//! recomputed and both results compared; a mismatch steers a store to the
//! null address, which traps — turning a would-be SDC into a detected
//! failure, exactly the duplicate-and-check of [1, 18, 28].
//!
//! The stress test then measures *actual* SDC coverage under a different
//! input (PEPPA-X's SDC-bound input) and compares it against the
//! *expected* coverage the knapsack promised.

pub mod coverage;
pub mod duplicate;
pub mod knapsack;
pub mod multi_input;
pub mod plan;

pub use coverage::{measure_coverage, CoverageMeasurement};
pub use duplicate::apply_protection;
pub use knapsack::{knapsack, Item};
pub use multi_input::plan_multi_input;
pub use plan::{plan_protection, ProtectionPlan};

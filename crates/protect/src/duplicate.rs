//! The duplicate-and-check IR transform.
//!
//! For each protected instruction `r = op a, b`, the transform inserts:
//!
//! ```text
//! r' = op a, b                 ; recompute
//! c  = icmp eq r, r'           ; (via bitcast to i64 for f64 values)
//! p  = select c, @scratch, null
//! store 0, p                   ; null store traps => fault detected
//! ```
//!
//! A transient fault that corrupts `r` (or `r'`, or the checker itself)
//! makes the comparison fail, steering the store to the null address —
//! an immediate trap, turning a would-be SDC into a detected failure.
//! This is the semantics of compiler-level selective duplication [1, 18,
//! 28]: side-effect-free value-producing instructions are protectable;
//! calls and allocas are not (re-execution would change program state).

use peppa_ir::{Block, CastKind, Const, IPred, Instr, InstrId, Module, Op, Operand, Ty, ValueId};
use std::collections::HashSet;

/// A protected module plus the mapping from its (renumbered) instruction
/// ids back to the original module's ids.
#[derive(Debug, Clone)]
pub struct ProtectedModule {
    pub module: Module,
    /// `origin[new_sid] = Some(old_sid)` for instructions carried over
    /// from the original program, `None` for inserted detector code.
    pub origin: Vec<Option<InstrId>>,
}

/// True if the duplicate-and-check transform can protect this opcode.
pub fn protectable(op: &Op) -> bool {
    matches!(
        op,
        Op::Bin { .. }
            | Op::Un { .. }
            | Op::Icmp { .. }
            | Op::Fcmp { .. }
            | Op::Select { .. }
            | Op::Cast { .. }
            | Op::Gep { .. }
            | Op::Load { .. }
    )
}

/// Applies selective duplication to `module`, protecting the
/// instructions in `selected` (non-protectable entries are ignored).
pub fn apply_protection(module: &Module, selected: &HashSet<InstrId>) -> ProtectedModule {
    let mut out = module.clone();

    // Scratch word the detector stores to on the OK path.
    let scratch_addr = out.globals_words();
    out.globals.push(peppa_ir::Global {
        name: "__detect_ok".to_string(),
        words: 1,
        init: Vec::new(),
    });

    for func in &mut out.functions {
        let mut new_blocks = Vec::with_capacity(func.blocks.len());
        for block in &func.blocks {
            let mut instrs: Vec<Instr> = Vec::with_capacity(block.instrs.len());
            for ins in &block.instrs {
                instrs.push(ins.clone());
                let protect = selected.contains(&ins.sid) && protectable(&ins.op);
                if !protect {
                    continue;
                }
                let r = ins.result.expect("protectable ops produce values");
                let ty = func.value_types[r.0 as usize];

                let new_value = |value_types: &mut Vec<Ty>, t: Ty| -> ValueId {
                    let id = ValueId(value_types.len() as u32);
                    value_types.push(t);
                    id
                };

                // Recompute.
                let dup = new_value(&mut func.value_types, ty);
                instrs.push(Instr {
                    sid: InstrId(u32::MAX),
                    op: ins.op.clone(),
                    result: Some(dup),
                });

                // Compare (bitwise for floats).
                let (lhs, rhs) = if ty == Ty::F64 {
                    let a = new_value(&mut func.value_types, Ty::I64);
                    instrs.push(Instr {
                        sid: InstrId(u32::MAX),
                        op: Op::Cast {
                            kind: CastKind::Bitcast,
                            a: Operand::Value(r),
                            to: Ty::I64,
                        },
                        result: Some(a),
                    });
                    let b = new_value(&mut func.value_types, Ty::I64);
                    instrs.push(Instr {
                        sid: InstrId(u32::MAX),
                        op: Op::Cast {
                            kind: CastKind::Bitcast,
                            a: Operand::Value(dup),
                            to: Ty::I64,
                        },
                        result: Some(b),
                    });
                    (Operand::Value(a), Operand::Value(b))
                } else {
                    (Operand::Value(r), Operand::Value(dup))
                };
                let eq = new_value(&mut func.value_types, Ty::I1);
                instrs.push(Instr {
                    sid: InstrId(u32::MAX),
                    op: Op::Icmp {
                        pred: IPred::Eq,
                        a: lhs,
                        b: rhs,
                    },
                    result: Some(eq),
                });

                // Steer a store through null on mismatch.
                let addr = new_value(&mut func.value_types, Ty::Ptr);
                instrs.push(Instr {
                    sid: InstrId(u32::MAX),
                    op: Op::Select {
                        cond: Operand::Value(eq),
                        t: Operand::Const(Const::ptr(scratch_addr)),
                        f: Operand::Const(Const::ptr(0)),
                    },
                    result: Some(addr),
                });
                instrs.push(Instr {
                    sid: InstrId(u32::MAX),
                    op: Op::Store {
                        addr: Operand::Value(addr),
                        value: Operand::i64(0),
                    },
                    result: None,
                });
            }
            new_blocks.push(Block {
                params: block.params.clone(),
                instrs,
                term: block.term.clone(),
            });
        }
        func.blocks = new_blocks;
    }

    // Renumber sids densely in program order, recording provenance.
    let mut origin = Vec::new();
    let mut next = 0u32;
    for func in &mut out.functions {
        for block in &mut func.blocks {
            for ins in &mut block.instrs {
                origin.push(if ins.sid == InstrId(u32::MAX) {
                    None
                } else {
                    Some(ins.sid)
                });
                ins.sid = InstrId(next);
                next += 1;
            }
        }
    }
    out.num_instrs = next as usize;

    peppa_ir::verify(&out).expect("protected module must verify");
    ProtectedModule {
        module: out,
        origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_vm::{ExecLimits, InjectionTarget, RunStatus, Trap, Vm};

    const SRC: &str = r#"
        fn main(n: int) {
            let acc = 0;
            for (i = 0; i < n; i = i + 1) {
                acc = acc + i * i;
            }
            output acc;
        }
    "#;

    fn protect_all(src: &str) -> (Module, ProtectedModule) {
        let m = peppa_lang::compile(src, "dup").unwrap();
        let all: HashSet<InstrId> = m
            .all_instrs()
            .iter()
            .filter(|(_, i)| protectable(&i.op))
            .map(|(_, i)| i.sid)
            .collect();
        let p = apply_protection(&m, &all);
        (m, p)
    }

    #[test]
    fn protected_program_computes_same_output() {
        let (m, p) = protect_all(SRC);
        let vm0 = Vm::new(&m, ExecLimits::default());
        let vm1 = Vm::new(&p.module, ExecLimits::default());
        for n in [0.0, 1.0, 7.0, 20.0] {
            let a = vm0.run_numeric(&[n], None);
            let b = vm1.run_numeric(&[n], None);
            assert_eq!(b.status, RunStatus::Ok);
            assert_eq!(a.output, b.output, "n = {n}");
        }
    }

    #[test]
    fn fault_in_protected_instruction_is_detected() {
        let (_, p) = protect_all(SRC);
        let vm = Vm::new(&p.module, ExecLimits::default());
        let golden = vm.run_numeric(&[10.0], None);
        assert_eq!(golden.status, RunStatus::Ok);
        // Flip a high bit in every original (protected) instruction's
        // first instance; each must end in a trap (detected), a benign
        // outcome, or a crash — never an SDC.
        let mut detected = 0;
        let mut sdc = 0;
        for (new_sid, orig) in p.origin.iter().enumerate() {
            if orig.is_none() {
                continue;
            }
            let ins = &p.module.all_instrs()[new_sid].1.clone();
            if ins.result.is_none() || golden.profile.exec_counts[new_sid] == 0 {
                continue;
            }
            let inj = peppa_vm::Injection {
                target: InjectionTarget::StaticInstance {
                    sid: InstrId(new_sid as u32),
                    instance: 0,
                },
                bit: 40,
                burst: 0,
            };
            let out = vm.run_numeric(&[10.0], Some(inj));
            match out.status {
                RunStatus::Trap(Trap::OutOfBounds { addr: 0 }) => detected += 1,
                RunStatus::Ok if out.output != golden.output => sdc += 1,
                _ => {}
            }
        }
        assert!(detected > 0, "no faults detected by the checker");
        assert_eq!(sdc, 0, "protected instructions still produced SDCs");
    }

    #[test]
    fn unprotected_module_unchanged_when_nothing_selected() {
        let m = peppa_lang::compile(SRC, "dup").unwrap();
        let p = apply_protection(&m, &HashSet::new());
        assert_eq!(p.module.num_instrs, m.num_instrs);
        let vm0 = Vm::new(&m, ExecLimits::default());
        let vm1 = Vm::new(&p.module, ExecLimits::default());
        assert_eq!(
            vm0.run_numeric(&[5.0], None).output,
            vm1.run_numeric(&[5.0], None).output
        );
    }

    #[test]
    fn float_values_compared_bitwise() {
        let src = "fn main(x: float) { let y = x * 1.5 + 2.0; output y; }";
        let (m, p) = protect_all(src);
        assert!(p.module.num_instrs > m.num_instrs);
        let vm = Vm::new(&p.module, ExecLimits::default());
        let out = vm.run_numeric(&[3.0], None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(f64::from_bits(out.output[0]), 3.0 * 1.5 + 2.0);
    }

    #[test]
    fn origin_mapping_consistent() {
        let (m, p) = protect_all(SRC);
        assert_eq!(p.origin.len(), p.module.num_instrs);
        let carried: Vec<InstrId> = p.origin.iter().flatten().copied().collect();
        // Every original instruction appears exactly once, in order.
        assert_eq!(carried.len(), m.num_instrs);
        for (i, sid) in carried.iter().enumerate() {
            assert_eq!(sid.0 as usize, i);
        }
    }

    #[test]
    fn calls_and_outputs_not_duplicated() {
        let src = r#"
            fn f(x: int) -> int { return x + 1; }
            fn main(n: int) { output f(n); }
        "#;
        let m = peppa_lang::compile(src, "dup").unwrap();
        let all: HashSet<InstrId> = m.all_instrs().iter().map(|(_, i)| i.sid).collect();
        let p = apply_protection(&m, &all);
        // The call and output must appear exactly once each.
        let calls = p
            .module
            .all_instrs()
            .iter()
            .filter(|(_, i)| i.op.mnemonic() == "call")
            .count();
        let outputs = p
            .module
            .all_instrs()
            .iter()
            .filter(|(_, i)| i.op.mnemonic() == "output")
            .count();
        assert_eq!(calls, 1);
        assert_eq!(outputs, 1);
    }
}

//! 0-1 knapsack optimization (§6: "formulates the SDC coverage and
//! protection overhead as a classical 0-1 knapsack problem").
//!
//! Costs are dynamic-instruction counts (u64, potentially large), so the
//! exact DP runs on a scaled-down cost grid; with the default resolution
//! the approximation error is below one part in ten thousand of the
//! budget, and an exhaustive check in the tests confirms exactness on
//! small instances when no scaling is needed.

/// One candidate instruction for protection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// SDC-probability mass covered by duplicating this instruction
    /// (`P_i × N_i`).
    pub benefit: f64,
    /// Performance cost of the duplication (extra dynamic instructions).
    pub cost: u64,
}

/// Solves 0-1 knapsack: returns indices of chosen items maximizing total
/// benefit with total cost ≤ `budget`. `resolution` bounds the DP table
/// width (cost units after scaling); 100_000 gives ≤0.001% budget error.
pub fn knapsack(items: &[Item], budget: u64, resolution: usize) -> Vec<usize> {
    if items.is_empty() || budget == 0 {
        return Vec::new();
    }
    // Scale costs so the budget fits in `resolution` units.
    let scale = (budget / resolution as u64).max(1);
    let cap = (budget / scale) as usize;

    // Items costing 0 after scaling are free: always take them (benefit
    // is non-negative).
    let mut free: Vec<usize> = Vec::new();
    let mut paid: Vec<(usize, usize, f64)> = Vec::new(); // (index, scaled cost, benefit)
    for (i, it) in items.iter().enumerate() {
        let c = (it.cost / scale) as usize;
        if it.cost > budget {
            continue; // can never fit
        }
        if c == 0 {
            free.push(i);
        } else if c <= cap {
            paid.push((i, c, it.benefit.max(0.0)));
        }
    }

    // DP over scaled capacity with parent tracking for reconstruction.
    let mut best = vec![0.0f64; cap + 1];
    let mut taken: Vec<Vec<bool>> = Vec::with_capacity(paid.len());
    for &(_, c, b) in &paid {
        let mut row = vec![false; cap + 1];
        for w in (c..=cap).rev() {
            let candidate = best[w - c] + b;
            if candidate > best[w] {
                best[w] = candidate;
                row[w] = true;
            }
        }
        taken.push(row);
    }

    // Reconstruct.
    let mut w = (0..=cap)
        .max_by(|&a, &b| {
            best[a]
                .partial_cmp(&best[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(0);
    let mut chosen = free;
    for (k, &(idx, c, _)) in paid.iter().enumerate().rev() {
        if taken[k][w] {
            chosen.push(idx);
            w -= c;
        }
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(items: &[Item], budget: u64) -> f64 {
        let n = items.len();
        let mut best = 0.0f64;
        for mask in 0..(1u32 << n) {
            let mut cost = 0u64;
            let mut benefit = 0.0;
            for (i, it) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    cost += it.cost;
                    benefit += it.benefit;
                }
            }
            if cost <= budget && benefit > best {
                best = benefit;
            }
        }
        best
    }

    fn total_benefit(items: &[Item], chosen: &[usize]) -> f64 {
        chosen.iter().map(|&i| items[i].benefit).sum()
    }

    fn total_cost(items: &[Item], chosen: &[usize]) -> u64 {
        chosen.iter().map(|&i| items[i].cost).sum()
    }

    #[test]
    fn matches_brute_force_small() {
        let items = vec![
            Item {
                benefit: 6.0,
                cost: 3,
            },
            Item {
                benefit: 5.0,
                cost: 2,
            },
            Item {
                benefit: 4.0,
                cost: 2,
            },
            Item {
                benefit: 9.0,
                cost: 5,
            },
            Item {
                benefit: 1.0,
                cost: 1,
            },
        ];
        for budget in 0..=13 {
            let chosen = knapsack(&items, budget, 1_000_000);
            assert!(total_cost(&items, &chosen) <= budget);
            let got = total_benefit(&items, &chosen);
            let want = brute_force(&items, budget);
            assert!(
                (got - want).abs() < 1e-9,
                "budget {budget}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn classic_counterexample_to_greedy() {
        // Greedy-by-ratio picks item 0 (ratio 2.0) and misses the optimal
        // pair {1, 2}.
        let items = vec![
            Item {
                benefit: 10.0,
                cost: 5,
            },
            Item {
                benefit: 6.0,
                cost: 4,
            },
            Item {
                benefit: 6.0,
                cost: 4,
            },
        ];
        let chosen = knapsack(&items, 8, 1_000_000);
        assert_eq!(chosen, vec![1, 2]);
    }

    #[test]
    fn oversized_items_skipped() {
        let items = vec![
            Item {
                benefit: 100.0,
                cost: 50,
            },
            Item {
                benefit: 1.0,
                cost: 2,
            },
        ];
        let chosen = knapsack(&items, 10, 1_000_000);
        assert_eq!(chosen, vec![1]);
    }

    #[test]
    fn zero_budget_chooses_nothing() {
        let items = vec![Item {
            benefit: 5.0,
            cost: 1,
        }];
        assert!(knapsack(&items, 0, 1000).is_empty());
    }

    #[test]
    fn scaling_stays_near_optimal() {
        // Large costs force scaling; the scaled solution must stay within
        // a small factor of brute force.
        let items: Vec<Item> = (0..12)
            .map(|i| Item {
                benefit: ((i * 7) % 13) as f64 + 1.0,
                cost: 1_000_000 + (i as u64 * 777_777),
            })
            .collect();
        let budget = 6_000_000u64;
        let chosen = knapsack(&items, budget, 10_000);
        assert!(total_cost(&items, &chosen) <= budget);
        let got = total_benefit(&items, &chosen);
        let want = brute_force(&items, budget);
        assert!(got >= 0.95 * want, "{got} vs {want}");
    }

    #[test]
    fn free_items_always_taken() {
        // With a huge budget and tiny costs, scaling makes items free;
        // all should be selected.
        let items: Vec<Item> = (0..5)
            .map(|i| Item {
                benefit: i as f64 + 1.0,
                cost: 1,
            })
            .collect();
        let chosen = knapsack(&items, u64::MAX / 2, 100);
        assert_eq!(chosen, vec![0, 1, 2, 3, 4]);
    }
}

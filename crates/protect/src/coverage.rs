//! SDC-coverage measurement for protected binaries (§6's evaluation
//! metric).
//!
//! Coverage is the fraction of the unprotected program's SDC probability
//! that the protection removes under a given input:
//!
//! ```text
//! coverage(input) = 1 − P_sdc(protected, input) / P_sdc(unprotected, input)
//! ```
//!
//! Measured with the reference input this is the *expected* coverage
//! developers see; measured with an SDC-bound input it is the *actual*
//! coverage the paper shows collapsing (Figure 9).

use peppa_inject::campaign::CampaignError;
use peppa_inject::{run_campaign, CampaignConfig};
use peppa_ir::Module;
use peppa_vm::ExecLimits;
use serde::{Deserialize, Serialize};

/// Paired FI measurement of an unprotected/protected module pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageMeasurement {
    pub sdc_prob_unprotected: f64,
    pub sdc_prob_protected: f64,
    /// Crash probability of the protected run — includes detections
    /// (null-store traps).
    pub crash_prob_protected: f64,
    /// `1 − protected/unprotected`, clamped to `[0, 1]`.
    pub coverage: f64,
}

/// Measures SDC coverage of `protected` relative to `unprotected` for
/// one input.
pub fn measure_coverage(
    unprotected: &Module,
    protected: &Module,
    input: &[f64],
    limits: ExecLimits,
    trials: u32,
    seed: u64,
    threads: usize,
) -> Result<CoverageMeasurement, CampaignError> {
    let cfg = CampaignConfig {
        trials,
        seed,
        hang_factor: 8,
        threads,
        burst: 0,
        ..Default::default()
    };
    let base = run_campaign(unprotected, input, limits, cfg)?;
    let prot = run_campaign(
        protected,
        input,
        limits,
        CampaignConfig {
            seed: seed ^ 0x9e37,
            ..cfg
        },
    )?;

    let pu = base.sdc_prob();
    let pp = prot.sdc_prob();
    let coverage = if pu <= 0.0 {
        1.0
    } else {
        (1.0 - pp / pu).clamp(0.0, 1.0)
    };
    Ok(CoverageMeasurement {
        sdc_prob_unprotected: pu,
        sdc_prob_protected: pp,
        crash_prob_protected: prot.crash_prob(),
        coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplicate::{apply_protection, protectable};
    use peppa_ir::InstrId;
    use std::collections::HashSet;

    #[test]
    fn full_protection_yields_high_coverage() {
        let src = r#"
            fn main(n: int) {
                let acc = 0;
                for (i = 0; i < n; i = i + 1) { acc = acc + i * 3; }
                output acc;
            }
        "#;
        let m = peppa_lang::compile(src, "cov").unwrap();
        let all: HashSet<InstrId> = m
            .all_instrs()
            .iter()
            .filter(|(_, i)| protectable(&i.op))
            .map(|(_, i)| i.sid)
            .collect();
        let p = apply_protection(&m, &all);
        let c = measure_coverage(&m, &p.module, &[24.0], ExecLimits::default(), 250, 3, 0).unwrap();
        assert!(
            c.sdc_prob_protected < c.sdc_prob_unprotected,
            "protection did not reduce SDCs: {c:?}"
        );
        assert!(c.coverage > 0.8, "coverage only {}", c.coverage);
        // Detections convert SDCs into traps, so crashes go up.
        assert!(c.crash_prob_protected > 0.0);
    }

    #[test]
    fn no_protection_gives_no_coverage() {
        let src = "fn main(n: int) { output n * 17 + 3; }";
        let m = peppa_lang::compile(src, "cov0").unwrap();
        let p = apply_protection(&m, &HashSet::new());
        let c = measure_coverage(&m, &p.module, &[9.0], ExecLimits::default(), 150, 7, 0).unwrap();
        // Identical programs, same campaign sizes: probabilities are close
        // (different seeds), and coverage is far from 1.
        assert!(c.coverage < 0.5, "{c:?}");
    }
}

//! Input-aware protection planning — the improvement the paper defers to
//! future work (§6: "We refer the improvement of selective instruction
//! duplication technique to our future work").
//!
//! Classic planning measures `P_i` and `N_i` under the *default
//! reference input* only; Figure 9 shows the resulting protection
//! collapsing under SDC-bound inputs. The input-aware planner instead
//! aggregates measurements across a *set* of inputs (reference + random
//! + SDC-bound):
//!
//! * benefit of protecting `i` = **worst-case** SDC mass
//!   `max_x P_i(x) · N_i(x)` — an instruction is worth protecting if it
//!   is dangerous under *any* anticipated input;
//! * cost of duplicating `i` = **mean** footprint `avg_x N_i(x)` — the
//!   expected runtime overhead over the input mix.

use crate::knapsack::{knapsack, Item};
use crate::plan::ProtectionPlan;
use peppa_inject::PerInstrResult;
use peppa_ir::{InstrId, Module};
use peppa_vm::{ExecLimits, Vm};

/// Builds an input-aware plan from per-input measurements.
/// `measurements[k]` must correspond to `inputs[k]`.
pub fn plan_multi_input(
    module: &Module,
    inputs: &[Vec<f64>],
    limits: ExecLimits,
    measurements: &[PerInstrResult],
    level: f64,
) -> ProtectionPlan {
    assert!(!inputs.is_empty(), "need at least one planning input");
    assert_eq!(
        inputs.len(),
        measurements.len(),
        "one measurement per input"
    );
    assert!((0.0..=1.0).contains(&level));

    // Profiles per input.
    let vm = Vm::new(module, limits);
    let profiles: Vec<_> = inputs
        .iter()
        .map(|x| vm.run_numeric(x, None).profile)
        .collect();
    let mean_total: f64 =
        profiles.iter().map(|p| p.dynamic as f64).sum::<f64>() / profiles.len() as f64;

    let mut sids: Vec<InstrId> = Vec::new();
    let mut items: Vec<Item> = Vec::new();
    let mut total_mass = 0.0;
    for (_, ins) in module.all_instrs() {
        if !crate::duplicate::protectable(&ins.op) {
            continue;
        }
        let sid = ins.sid;
        let mut worst_mass = 0.0f64;
        let mut mean_cost = 0.0f64;
        let mut measurable = false;
        for (m, p) in measurements.iter().zip(&profiles) {
            let n = p.exec_counts[sid.0 as usize];
            mean_cost += n as f64;
            if let Some(prob) = m.sdc_prob[sid.0 as usize] {
                measurable = true;
                worst_mass = worst_mass.max(prob * n as f64);
            }
        }
        mean_cost /= measurements.len() as f64;
        if !measurable || mean_cost == 0.0 {
            continue;
        }
        total_mass += worst_mass;
        sids.push(sid);
        items.push(Item {
            benefit: worst_mass,
            cost: mean_cost.round().max(1.0) as u64,
        });
    }

    let budget = (level * mean_total) as u64;
    let chosen = knapsack(&items, budget, 100_000);
    let selected: Vec<InstrId> = chosen.iter().map(|&k| sids[k]).collect();
    let covered: f64 = chosen.iter().map(|&k| items[k].benefit).sum();
    let used: u64 = chosen.iter().map(|&k| items[k].cost).sum();

    ProtectionPlan {
        level,
        selected,
        expected_coverage: if total_mass > 0.0 {
            covered / total_mass
        } else {
            0.0
        },
        actual_overhead: used as f64 / mean_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{measure_for_planning, plan_from_measurement};
    use crate::{apply_protection, measure_coverage};
    use std::collections::HashSet;

    /// The mode-shifting kernel: planning on mode=1 misses the chain
    /// that dominates at mode=50.
    const SHIFTY: &str = r#"
        fn main(n: int, mode: int) {
            let acc = 0;
            if (mode < 10) {
                for (i = 0; i < n; i = i + 1) { acc = acc + i * 3; }
            } else {
                for (i = 0; i < n; i = i + 1) {
                    let x = i * 5 + mode;
                    let y = x * x - i;
                    acc = acc + y;
                }
            }
            output acc;
        }
    "#;

    #[test]
    fn multi_input_plan_raises_stress_coverage() {
        let m = peppa_lang::compile(SHIFTY, "shifty").unwrap();
        let limits = ExecLimits::default();
        let ref_input = vec![30.0, 1.0];
        let stress_input = vec![30.0, 50.0];

        // Single-input (classic) plan.
        let ref_meas = measure_for_planning(&m, &ref_input, limits, 30, 5, 0).unwrap();
        let classic = plan_from_measurement(&m, &ref_input, limits, &ref_meas, 0.6);

        // Input-aware plan over {reference, stress}.
        let stress_meas = measure_for_planning(&m, &stress_input, limits, 30, 6, 0).unwrap();
        let aware = plan_multi_input(
            &m,
            &[ref_input.clone(), stress_input.clone()],
            limits,
            &[ref_meas, stress_meas],
            0.6,
        );

        let cov = |plan: &ProtectionPlan, input: &[f64], seed: u64| {
            let selected: HashSet<_> = plan.selected.iter().copied().collect();
            let protected = apply_protection(&m, &selected);
            measure_coverage(&m, &protected.module, input, limits, 300, seed, 0)
                .unwrap()
                .coverage
        };

        let classic_stress = cov(&classic, &stress_input, 1);
        let aware_stress = cov(&aware, &stress_input, 2);
        assert!(
            aware_stress > classic_stress,
            "input-aware plan did not improve stress coverage: {aware_stress} vs {classic_stress}"
        );
    }

    #[test]
    fn single_input_multi_plan_matches_classic_shape() {
        let m = peppa_lang::compile(SHIFTY, "shifty2").unwrap();
        let limits = ExecLimits::default();
        let input = vec![20.0, 1.0];
        let meas = measure_for_planning(&m, &input, limits, 20, 7, 0).unwrap();
        let multi = plan_multi_input(
            &m,
            std::slice::from_ref(&input),
            limits,
            std::slice::from_ref(&meas),
            0.5,
        );
        let classic = plan_from_measurement(&m, &input, limits, &meas, 0.5);
        // Same measurement, same budget: both plans cover similar mass.
        assert!((multi.expected_coverage - classic.expected_coverage).abs() < 0.25);
        assert!(multi.actual_overhead <= 0.5 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "one measurement per input")]
    fn arity_checked() {
        let m = peppa_lang::compile(SHIFTY, "shifty3").unwrap();
        plan_multi_input(&m, &[vec![1.0, 1.0]], ExecLimits::default(), &[], 0.5);
    }
}

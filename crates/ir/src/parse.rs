//! Parser for the PIR text format emitted by [`crate::printer`].
//!
//! Round-tripping `Module -> text -> Module` enables IR-level tooling
//! (diffing protected binaries, storing compiled benchmarks as
//! artifacts, hand-editing repro cases). The grammar is exactly what the
//! printer produces; see `printer.rs`.

use crate::instr::{BinOp, CastKind, FPred, IPred, Instr, InstrId, Op, Operand, Term, UnOp};
use crate::module::{Block, BlockId, Const, FuncId, Function, Global, Module, ValueId};
use crate::types::Ty;
use std::collections::HashMap;

/// A parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses a module from the printer's text format. The result is
/// verified before being returned.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut p = Parser::new(text);
    let module = p.module()?;
    crate::verify::verify(&module).map_err(|e| ParseError {
        line: 0,
        message: format!("verification failed: {e}"),
    })?;
    Ok(module)
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                // Strip trailing comments except the sid annotation,
                // which we parse explicitly.
                (i + 1, l.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let x = self.peek();
        if x.is_some() {
            self.pos += 1;
        }
        x
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        let mut name = "parsed".to_string();
        let mut globals = Vec::new();
        let mut functions = Vec::new();
        let mut entry = None;
        let mut func_names: HashMap<String, (FuncId, Option<Ty>)> = HashMap::new();

        // First pass over the text to pre-register function names and
        // return types, so calls can resolve forward references and give
        // their results the right type immediately.
        for (ln, l) in &self.lines {
            if let Some(rest) = l.strip_prefix("fn @") {
                if let Some(open) = rest.find('(') {
                    let fname = rest[..open].to_string();
                    let id = FuncId(func_names.len() as u32);
                    let ret = match rest.find(')').map(|c| rest[c + 1..].trim()) {
                        Some(tail) if tail.starts_with("->") => Some(parse_ty(
                            tail.trim_start_matches("->").trim_end_matches('{').trim(),
                            *ln,
                        )?),
                        _ => None,
                    };
                    func_names.insert(fname, (id, ret));
                }
            }
        }

        while let Some((ln, l)) = self.peek() {
            if let Some(rest) = l.strip_prefix("; module ") {
                name = rest
                    .split_whitespace()
                    .next()
                    .unwrap_or("parsed")
                    .to_string();
                self.pos += 1;
            } else if let Some(rest) = l.strip_prefix("global @") {
                // global @name[words] [= w0, w1, ...]
                let (gname, rest) = rest.split_once('[').ok_or_else(|| ParseError {
                    line: ln,
                    message: "bad global".into(),
                })?;
                let (size, tail) = rest.split_once(']').ok_or_else(|| ParseError {
                    line: ln,
                    message: "bad global".into(),
                })?;
                let words: u64 = size.parse().map_err(|_| ParseError {
                    line: ln,
                    message: "bad global size".into(),
                })?;
                let tail = tail.trim();
                let init = if let Some(list) = tail.strip_prefix('=') {
                    list.split(',')
                        .map(|w| w.trim().parse::<u64>())
                        .collect::<Result<Vec<u64>, _>>()
                        .map_err(|_| ParseError {
                            line: ln,
                            message: "bad global initializer".into(),
                        })?
                } else if tail.is_empty() {
                    Vec::new()
                } else {
                    return err(ln, "bad global");
                };
                globals.push(Global {
                    name: gname.to_string(),
                    words,
                    init,
                });
                self.pos += 1;
            } else if l.starts_with("fn @") {
                let (func, is_entry) = self.function(&func_names)?;
                if is_entry {
                    entry = Some(FuncId(functions.len() as u32));
                }
                functions.push(func);
            } else if l.starts_with("; entry") {
                // The printer emits the entry marker right after the
                // entry function's closing brace.
                if functions.is_empty() {
                    return err(ln, "entry marker before any function");
                }
                entry = Some(FuncId(functions.len() as u32 - 1));
                self.pos += 1;
            } else if l == "}" {
                self.pos += 1;
            } else {
                return err(ln, format!("unexpected line: {l}"));
            }
        }

        let num_instrs = functions.iter().map(|f: &Function| f.num_instrs()).sum();
        let entry = entry.unwrap_or(FuncId(0));
        if functions.is_empty() {
            return err(0, "no functions");
        }
        Ok(Module {
            name,
            functions,
            globals,
            entry,
            num_instrs,
        })
    }

    fn function(
        &mut self,
        func_names: &HashMap<String, (FuncId, Option<Ty>)>,
    ) -> Result<(Function, bool), ParseError> {
        let (ln, header) = self.next().expect("caller checked");
        // fn @name(%0: ty, ...) [-> ty] {
        let rest = header.strip_prefix("fn @").unwrap();
        let open = rest.find('(').ok_or_else(|| ParseError {
            line: ln,
            message: "no (".into(),
        })?;
        let name = rest[..open].to_string();
        let close = rest.find(')').ok_or_else(|| ParseError {
            line: ln,
            message: "no )".into(),
        })?;
        let params_text = &rest[open + 1..close];
        let mut params = Vec::new();
        if !params_text.trim().is_empty() {
            for part in params_text.split(',') {
                let (_, ty) = part.split_once(':').ok_or_else(|| ParseError {
                    line: ln,
                    message: "bad param".into(),
                })?;
                params.push(parse_ty(ty.trim(), ln)?);
            }
        }
        let tail = &rest[close + 1..];
        let ret = if let Some(r) = tail.trim().strip_prefix("->") {
            Some(parse_ty(r.trim_end_matches('{').trim(), ln)?)
        } else {
            None
        };

        let mut value_types: Vec<Ty> = params.clone();
        // Forward references (a later block's params) occupy placeholder
        // slots until their declaration appears; `known` tracks which
        // slots hold real types.
        let mut known: Vec<bool> = vec![true; params.len()];
        let mut blocks: Vec<Block> = Vec::new();
        let mut cur: Option<Block> = None;
        let mut is_entry = false;

        // Track value types as definitions appear. Block params declare
        // their types inline; instruction results get types from opcodes.
        fn ensure_value(
            value_types: &mut Vec<Ty>,
            known: &mut Vec<bool>,
            v: u32,
            ty: Ty,
            ln: usize,
        ) -> Result<(), ParseError> {
            if (v as usize) < value_types.len() {
                if known[v as usize] && value_types[v as usize] != ty {
                    return err(ln, format!("value %{v} redefined with different type"));
                }
                value_types[v as usize] = ty;
                known[v as usize] = true;
                return Ok(());
            }
            while value_types.len() < v as usize {
                value_types.push(Ty::I64);
                known.push(false);
            }
            value_types.push(ty);
            known.push(true);
            Ok(())
        }

        loop {
            let Some((ln, l)) = self.next() else {
                return err(ln, "unexpected end of function");
            };
            if l == "}" || l.starts_with("} ") {
                if l.contains("; entry") {
                    is_entry = true;
                }
                if let Some(b) = cur.take() {
                    blocks.push(b);
                }
                break;
            }
            if l.starts_with("bb") && l.ends_with(':') {
                if let Some(b) = cur.take() {
                    blocks.push(b);
                }
                // bbN: or bbN(%a: ty, ...):
                let body = l.trim_end_matches(':');
                let params = if let Some(open) = body.find('(') {
                    let inner = &body[open + 1..body.len() - 1];
                    let mut ps = Vec::new();
                    for part in inner.split(',') {
                        let (v, ty) = part.split_once(':').ok_or_else(|| ParseError {
                            line: ln,
                            message: "bad block param".into(),
                        })?;
                        let vid = parse_value(v.trim(), ln)?;
                        let ty = parse_ty(ty.trim(), ln)?;
                        ensure_value(&mut value_types, &mut known, vid.0, ty, ln)?;
                        ps.push(vid);
                    }
                    ps
                } else {
                    Vec::new()
                };
                cur = Some(Block {
                    params,
                    instrs: Vec::new(),
                    term: Term::Ret { value: None },
                });
                continue;
            }

            let block = cur.as_mut().ok_or_else(|| ParseError {
                line: ln,
                message: "instruction outside block".into(),
            })?;

            // Terminators.
            if l.starts_with("br ")
                || l.starts_with("condbr ")
                || l == "ret"
                || l.starts_with("ret ")
            {
                block.term = parse_term(l, ln, &value_types)?;
                continue;
            }

            // Instruction: [%N = ] body ; sid K
            let (body, sid) = match l.rsplit_once("; sid ") {
                Some((b, s)) => (
                    b.trim(),
                    InstrId(s.trim().parse().map_err(|_| ParseError {
                        line: ln,
                        message: "bad sid".into(),
                    })?),
                ),
                None => return err(ln, format!("instruction missing sid: {l}")),
            };
            let (result, opbody) = match body.split_once(" = ") {
                Some((lhs, rhs)) if lhs.starts_with('%') => (Some(parse_value(lhs, ln)?), rhs),
                _ => (None, body),
            };
            let (op, result_ty) = parse_op(opbody, ln, func_names, &value_types)?;
            if let (Some(r), Some(ty)) = (result, result_ty) {
                ensure_value(&mut value_types, &mut known, r.0, ty, ln)?;
            }
            block.instrs.push(Instr { sid, op, result });
        }

        Ok((
            Function {
                name,
                params,
                ret,
                blocks,
                value_types,
            },
            is_entry,
        ))
    }
}

fn parse_ty(s: &str, line: usize) -> Result<Ty, ParseError> {
    match s {
        "i1" => Ok(Ty::I1),
        "i32" => Ok(Ty::I32),
        "i64" => Ok(Ty::I64),
        "f64" => Ok(Ty::F64),
        "ptr" => Ok(Ty::Ptr),
        other => err(line, format!("unknown type `{other}`")),
    }
}

fn parse_value(s: &str, line: usize) -> Result<ValueId, ParseError> {
    s.strip_prefix('%')
        .and_then(|n| n.parse().ok())
        .map(ValueId)
        .ok_or_else(|| ParseError {
            line,
            message: format!("bad value `{s}`"),
        })
}

/// Parses an operand. Constants carry their type syntactically
/// (`true`/`false`, `ptr:N`, floats contain `.` or are printed via
/// `{:?}`, everything else is i64); `expect` refines ambiguous integer
/// literals (e.g. i32 immediates).
fn parse_operand(
    s: &str,
    line: usize,
    value_types: &[Ty],
    expect: Option<Ty>,
) -> Result<Operand, ParseError> {
    let s = s.trim();
    if s.starts_with('%') {
        return Ok(Operand::Value(parse_value(s, line)?));
    }
    if s == "true" {
        return Ok(Operand::bool(true));
    }
    if s == "false" {
        return Ok(Operand::bool(false));
    }
    if let Some(p) = s.strip_prefix("ptr:") {
        let bits: u64 = p.parse().map_err(|_| ParseError {
            line,
            message: format!("bad ptr `{s}`"),
        })?;
        return Ok(Operand::Const(Const::ptr(bits)));
    }
    if s.contains('.') || s.contains("inf") || s.contains("NaN") || s.contains('e') {
        let v: f64 = s.parse().map_err(|_| ParseError {
            line,
            message: format!("bad float `{s}`"),
        })?;
        return Ok(Operand::f64(v));
    }
    let v: i64 = s.parse().map_err(|_| ParseError {
        line,
        message: format!("bad int `{s}`"),
    })?;
    match expect {
        Some(Ty::I32) => Ok(Operand::i32(v as i32)),
        Some(Ty::F64) => Ok(Operand::f64(v as f64)),
        Some(Ty::I1) => Ok(Operand::bool(v != 0)),
        _ => Ok(Operand::i64(v)),
    }
    .inspect(|_op| {
        let _ = value_types;
    })
}

fn operand_ty(o: &Operand, value_types: &[Ty]) -> Ty {
    match o {
        Operand::Value(v) => value_types[v.0 as usize],
        Operand::Const(c) => c.ty,
    }
}

fn split2(s: &str, line: usize) -> Result<(&str, &str), ParseError> {
    s.split_once(',')
        .map(|(a, b)| (a.trim(), b.trim()))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected two operands in `{s}`"),
        })
}

fn parse_op(
    body: &str,
    line: usize,
    func_names: &HashMap<String, (FuncId, Option<Ty>)>,
    value_types: &[Ty],
) -> Result<(Op, Option<Ty>), ParseError> {
    let (mn, rest) = body.split_once(' ').unwrap_or((body, ""));
    let bin = |op: BinOp| -> Result<(Op, Option<Ty>), ParseError> {
        let (a, b) = split2(rest, line)?;
        let a = parse_operand(a, line, value_types, None)?;
        let ta = operand_ty(&a, value_types);
        let b = parse_operand(b, line, value_types, Some(ta))?;
        // Float opcodes force float constants (e.g. `fmul %3, 2`).
        let (a, b) = if op.is_float() {
            (coerce_f64(a), coerce_f64(b))
        } else {
            (a, b)
        };
        let ty = operand_ty(&a, value_types);
        Ok((Op::Bin { op, a, b }, Some(ty)))
    };
    match mn {
        "add" => bin(BinOp::Add),
        "sub" => bin(BinOp::Sub),
        "mul" => bin(BinOp::Mul),
        "sdiv" => bin(BinOp::SDiv),
        "srem" => bin(BinOp::SRem),
        "fadd" => bin(BinOp::FAdd),
        "fsub" => bin(BinOp::FSub),
        "fmul" => bin(BinOp::FMul),
        "fdiv" => bin(BinOp::FDiv),
        "and" => bin(BinOp::And),
        "or" => bin(BinOp::Or),
        "xor" => bin(BinOp::Xor),
        "shl" => bin(BinOp::Shl),
        "lshr" => bin(BinOp::LShr),
        "ashr" => bin(BinOp::AShr),
        "fneg" | "not" | "sqrt" | "sin" | "cos" | "exp" | "log" | "floor" | "fabs" => {
            let op = match mn {
                "fneg" => UnOp::FNeg,
                "not" => UnOp::Not,
                "sqrt" => UnOp::Sqrt,
                "sin" => UnOp::Sin,
                "cos" => UnOp::Cos,
                "exp" => UnOp::Exp,
                "log" => UnOp::Log,
                "floor" => UnOp::Floor,
                _ => UnOp::FAbs,
            };
            let a = parse_operand(rest, line, value_types, None)?;
            let a = if op.is_float() { coerce_f64(a) } else { a };
            let ty = operand_ty(&a, value_types);
            Ok((Op::Un { op, a }, Some(ty)))
        }
        "icmp" | "fcmp" => {
            let (pred, ops) = rest.split_once(' ').ok_or_else(|| ParseError {
                line,
                message: "cmp missing predicate".into(),
            })?;
            let (a, b) = split2(ops, line)?;
            if mn == "icmp" {
                let pred = match pred {
                    "eq" => IPred::Eq,
                    "ne" => IPred::Ne,
                    "slt" => IPred::Slt,
                    "sle" => IPred::Sle,
                    "sgt" => IPred::Sgt,
                    "sge" => IPred::Sge,
                    "ult" => IPred::Ult,
                    p => return err(line, format!("bad ipred `{p}`")),
                };
                let a = parse_operand(a, line, value_types, None)?;
                let ta = operand_ty(&a, value_types);
                let b = parse_operand(b, line, value_types, Some(ta))?;
                Ok((Op::Icmp { pred, a, b }, Some(Ty::I1)))
            } else {
                let pred = match pred {
                    "oeq" => FPred::Oeq,
                    "one" => FPred::One,
                    "olt" => FPred::Olt,
                    "ole" => FPred::Ole,
                    "ogt" => FPred::Ogt,
                    "oge" => FPred::Oge,
                    p => return err(line, format!("bad fpred `{p}`")),
                };
                let a = coerce_f64(parse_operand(a, line, value_types, Some(Ty::F64))?);
                let b = coerce_f64(parse_operand(b, line, value_types, Some(Ty::F64))?);
                Ok((Op::Fcmp { pred, a, b }, Some(Ty::I1)))
            }
        }
        "select" => {
            let mut parts = rest.splitn(3, ',').map(str::trim);
            let cond = parse_operand(
                parts.next().ok_or_else(|| ParseError {
                    line,
                    message: "select cond".into(),
                })?,
                line,
                value_types,
                Some(Ty::I1),
            )?;
            let t = parse_operand(
                parts.next().ok_or_else(|| ParseError {
                    line,
                    message: "select t".into(),
                })?,
                line,
                value_types,
                None,
            )?;
            let tt = operand_ty(&t, value_types);
            let f = parse_operand(
                parts.next().ok_or_else(|| ParseError {
                    line,
                    message: "select f".into(),
                })?,
                line,
                value_types,
                Some(tt),
            )?;
            Ok((Op::Select { cond, t, f }, Some(tt)))
        }
        "trunc" | "zext" | "sext" | "fptosi" | "sitofp" | "bitcast" | "ptrtoint" | "inttoptr" => {
            // `<mn> <operand> to <ty>`
            let (a, to) = rest.rsplit_once(" to ").ok_or_else(|| ParseError {
                line,
                message: "cast missing `to`".into(),
            })?;
            let to = parse_ty(to.trim(), line)?;
            let kind = match mn {
                "trunc" => CastKind::Trunc,
                "zext" => CastKind::ZExt,
                "sext" => CastKind::SExt,
                "fptosi" => CastKind::FpToSi,
                "sitofp" => CastKind::SiToFp,
                "bitcast" => CastKind::Bitcast,
                "ptrtoint" => CastKind::PtrToInt,
                _ => CastKind::IntToPtr,
            };
            let a = parse_operand(a.trim(), line, value_types, None)?;
            Ok((Op::Cast { kind, a, to }, Some(to)))
        }
        "load" => {
            // load ty, addr
            let (ty, addr) = split2(rest, line)?;
            let ty = parse_ty(ty, line)?;
            let addr = parse_operand(addr, line, value_types, Some(Ty::Ptr))?;
            Ok((Op::Load { addr, ty }, Some(ty)))
        }
        "store" => {
            // store value, addr
            let (value, addr) = split2(rest, line)?;
            let value = parse_operand(value, line, value_types, None)?;
            let addr = parse_operand(addr, line, value_types, Some(Ty::Ptr))?;
            Ok((Op::Store { addr, value }, None))
        }
        "gep" => {
            let (base, index) = split2(rest, line)?;
            let base = parse_operand(base, line, value_types, Some(Ty::Ptr))?;
            let index = parse_operand(index, line, value_types, Some(Ty::I64))?;
            Ok((Op::Gep { base, index }, Some(Ty::Ptr)))
        }
        "alloca" => {
            let words = parse_operand(rest, line, value_types, Some(Ty::I64))?;
            Ok((Op::Alloca { words }, Some(Ty::Ptr)))
        }
        "call" => {
            // call @name(args)
            let rest = rest.strip_prefix('@').ok_or_else(|| ParseError {
                line,
                message: "call missing @".into(),
            })?;
            let open = rest.find('(').ok_or_else(|| ParseError {
                line,
                message: "call missing (".into(),
            })?;
            let fname = &rest[..open];
            let inner = rest[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| ParseError {
                    line,
                    message: "call missing )".into(),
                })?;
            let (func, ret) = *func_names.get(fname).ok_or_else(|| ParseError {
                line,
                message: format!("unknown fn @{fname}"),
            })?;
            let mut args = Vec::new();
            if !inner.trim().is_empty() {
                for part in inner.split(',') {
                    args.push(parse_operand(part, line, value_types, None)?);
                }
            }
            Ok((Op::Call { func, args }, ret))
        }
        "output" => {
            let value = parse_operand(rest, line, value_types, None)?;
            Ok((Op::Output { value }, None))
        }
        other => err(line, format!("unknown opcode `{other}`")),
    }
}

fn coerce_f64(o: Operand) -> Operand {
    match o {
        Operand::Const(c) if c.ty != Ty::F64 => Operand::f64(c.as_i64() as f64),
        other => other,
    }
}

fn parse_term(l: &str, line: usize, value_types: &[Ty]) -> Result<Term, ParseError> {
    if let Some(rest) = l.strip_prefix("condbr ") {
        // condbr cond, bbT(args), bbE(args)
        let (cond, rest) = rest.split_once(',').ok_or_else(|| ParseError {
            line,
            message: "condbr missing cond".into(),
        })?;
        let cond = parse_operand(cond.trim(), line, value_types, Some(Ty::I1))?;
        let rest = rest.trim();
        // Split the two edges at the comma following the first ')'.
        let close = rest.find(')').ok_or_else(|| ParseError {
            line,
            message: "condbr missing )".into(),
        })?;
        let (then_part, else_part) = rest.split_at(close + 1);
        let else_part = else_part.trim_start_matches(',').trim();
        let (then_target, then_args) = parse_edge(then_part.trim(), line, value_types)?;
        let (else_target, else_args) = parse_edge(else_part, line, value_types)?;
        return Ok(Term::CondBr {
            cond,
            then_target,
            then_args,
            else_target,
            else_args,
        });
    }
    if let Some(rest) = l.strip_prefix("br ") {
        let (target, args) = parse_edge(rest.trim(), line, value_types)?;
        return Ok(Term::Br { target, args });
    }
    if l == "ret" {
        return Ok(Term::Ret { value: None });
    }
    if let Some(rest) = l.strip_prefix("ret ") {
        let value = parse_operand(rest.trim(), line, value_types, None)?;
        return Ok(Term::Ret { value: Some(value) });
    }
    err(line, format!("bad terminator `{l}`"))
}

fn parse_edge(
    s: &str,
    line: usize,
    value_types: &[Ty],
) -> Result<(BlockId, Vec<Operand>), ParseError> {
    // bbN or bbN(a, b, ...)
    let s = s.trim();
    let (bb, args_text) = match s.find('(') {
        Some(open) => (
            &s[..open],
            Some(s[open + 1..].strip_suffix(')').ok_or_else(|| ParseError {
                line,
                message: "edge missing )".into(),
            })?),
        ),
        None => (s, None),
    };
    let id: u32 = bb
        .strip_prefix("bb")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| ParseError {
            line,
            message: format!("bad block ref `{bb}`"),
        })?;
    let mut args = Vec::new();
    if let Some(t) = args_text {
        if !t.trim().is_empty() {
            for part in t.split(',') {
                args.push(parse_operand(part, line, value_types, None)?);
            }
        }
    }
    Ok((BlockId(id), args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    fn roundtrip(m: &Module) -> Module {
        let text = m.to_string();
        parse_module(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"))
    }

    #[test]
    fn roundtrip_simple_arith() {
        let mut mb = ModuleBuilder::new("rt");
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let x = f.param(0);
        let y = f.add(x, Operand::i64(7));
        let z = f.mul(y, y);
        f.output(z);
        f.ret(Some(z));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        let m2 = roundtrip(&m);
        assert_eq!(m.num_instrs, m2.num_instrs);
        assert_eq!(m.functions[0].blocks.len(), m2.functions[0].blocks.len());
    }

    #[test]
    fn roundtrip_preserves_semantics_for_benchmark_kernel() {
        // A real kernel: control flow, floats, globals, casts.
        let src = r#"
            global float buf[32];
            fn main(n: int, s: float) {
                for (i = 0; i < n; i = i + 1) {
                    buf[i] = sqrt(i2f(i) + s) * 2.0;
                }
                let acc = 0.0;
                for (i = 0; i < n; i = i + 1) {
                    if (buf[i] > 3.0) { acc = acc + buf[i]; }
                }
                output floor(acc * 100.0 + 0.5);
            }
        "#;
        let m = peppa_lang_compile_for_test(src);
        let m2 = roundtrip(&m);
        assert_eq!(m.num_instrs, m2.num_instrs);
        assert_eq!(m.globals.len(), m2.globals.len());
    }

    // `peppa-lang` depends on `peppa-ir`, so tests here cannot use it
    // directly; this helper builds the same shape with the builder.
    fn peppa_lang_compile_for_test(_src: &str) -> Module {
        use crate::instr::IPred;
        let mut mb = ModuleBuilder::new("kernel");
        let buf = mb.global("buf", 32);
        let main = mb.declare("main", &[Ty::I64, Ty::F64], None);
        let mut f = mb.define(main);
        let n = f.param(0);
        let s = f.param(1);
        let (h1, v1) = f.new_block(&[Ty::I64]);
        let (b1, _) = f.new_block(&[]);
        let (h2, v2) = f.new_block(&[Ty::I64, Ty::F64]);
        let (b2, _) = f.new_block(&[]);
        let (exit, xv) = f.new_block(&[Ty::F64]);
        f.br(h1, &[Operand::i64(0)]);
        f.switch_to(h1);
        let c1 = f.icmp(IPred::Slt, v1[0], n);
        f.cond_br(c1, b1, &[], h2, &[Operand::i64(0), Operand::f64(0.0)]);
        f.switch_to(b1);
        let fi = f.cast(CastKind::SiToFp, v1[0], Ty::F64);
        let sum = f.fadd(fi, s);
        let sq = f.un(UnOp::Sqrt, sum);
        let scaled = f.fmul(sq, Operand::f64(2.0));
        let bits = f.cast(CastKind::Bitcast, scaled, Ty::I64);
        let p = f.gep(buf, v1[0]);
        f.store(p, bits);
        let i2 = f.add(v1[0], Operand::i64(1));
        f.br(h1, &[i2]);
        f.switch_to(h2);
        let c2 = f.icmp(IPred::Slt, v2[0], n);
        f.cond_br(c2, b2, &[], exit, &[v2[1]]);
        f.switch_to(b2);
        let p2 = f.gep(buf, v2[0]);
        let v = f.load(p2, Ty::F64);
        let gt = f.fcmp(FPred::Ogt, v, Operand::f64(3.0));
        let add = f.fadd(v2[1], v);
        let acc2 = f.select(gt, add, v2[1]);
        let i3 = f.add(v2[0], Operand::i64(1));
        f.br(h2, &[i3, acc2]);
        f.switch_to(exit);
        let m100 = f.fmul(xv[0], Operand::f64(100.0));
        let mh = f.fadd(m100, Operand::f64(0.5));
        let fl = f.un(UnOp::Floor, mh);
        f.output(fl);
        f.ret(None);
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        crate::verify::verify(&m).unwrap();
        m
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "fn @main() {\nbb0:\n  %0 = frobnicate 1, 2  ; sid 0\n  ret\n}";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("frobnicate"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn missing_sid_rejected() {
        let text = "fn @main() {\nbb0:\n  %0 = add 1, 2\n  ret\n}";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("sid"), "{e}");
    }

    #[test]
    fn roundtrip_bool_and_ptr_constants() {
        let mut mb = ModuleBuilder::new("consts");
        let g = mb.global("g", 2);
        let main = mb.declare("main", &[], None);
        let mut f = mb.define(main);
        let sel = f.select(Operand::bool(true), Operand::i64(1), Operand::i64(2));
        f.store(g, sel);
        let addr2 = f.gep(g, Operand::i64(1));
        f.store(addr2, Operand::i64(5));
        f.ret(None);
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        let m2 = roundtrip(&m);
        assert_eq!(m2.globals[0].words, 2);
        assert_eq!(m2.num_instrs, m.num_instrs);
    }
}

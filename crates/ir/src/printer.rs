//! Textual dump of PIR modules, in an LLVM-flavoured syntax.
//!
//! The printer exists for debugging and for the "source mapping" role the
//! paper assigns to LLVM IR (§2.3): every line carries the instruction's
//! module-wide `sid`, so SDC reports can be mapped back to IR locations.

use crate::instr::{FPred, IPred, Op, Operand, Term};
use crate::module::{Const, Function, Module};
use crate::types::Ty;
use std::fmt::Write;

fn fmt_const(c: &Const) -> String {
    match c.ty {
        Ty::F64 => format!("{:?}", c.as_f64()),
        Ty::I1 => format!("{}", c.bits != 0),
        Ty::Ptr => format!("ptr:{}", c.bits),
        _ => format!("{}", c.as_i64()),
    }
}

fn fmt_operand(o: &Operand) -> String {
    match o {
        Operand::Value(v) => format!("%{}", v.0),
        Operand::Const(c) => fmt_const(c),
    }
}

fn fmt_ipred(p: IPred) -> &'static str {
    match p {
        IPred::Eq => "eq",
        IPred::Ne => "ne",
        IPred::Slt => "slt",
        IPred::Sle => "sle",
        IPred::Sgt => "sgt",
        IPred::Sge => "sge",
        IPred::Ult => "ult",
    }
}

fn fmt_fpred(p: FPred) -> &'static str {
    match p {
        FPred::Oeq => "oeq",
        FPred::One => "one",
        FPred::Olt => "olt",
        FPred::Ole => "ole",
        FPred::Ogt => "ogt",
        FPred::Oge => "oge",
    }
}

fn fmt_args(args: &[Operand]) -> String {
    args.iter().map(fmt_operand).collect::<Vec<_>>().join(", ")
}

/// Renders one function.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut s = String::new();
    let params = f
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("%{i}: {t}"))
        .collect::<Vec<_>>()
        .join(", ");
    let ret = f.ret.map(|t| format!(" -> {t}")).unwrap_or_default();
    let _ = writeln!(s, "fn @{}({}){} {{", f.name, params, ret);
    for (bi, b) in f.blocks.iter().enumerate() {
        let bparams = b
            .params
            .iter()
            .map(|p| format!("%{}: {}", p.0, f.ty_of(*p)))
            .collect::<Vec<_>>()
            .join(", ");
        if bparams.is_empty() {
            let _ = writeln!(s, "bb{bi}:");
        } else {
            let _ = writeln!(s, "bb{bi}({bparams}):");
        }
        for ins in &b.instrs {
            let lhs = match ins.result {
                Some(r) => format!("%{} = ", r.0),
                None => String::new(),
            };
            let body = match &ins.op {
                Op::Bin { a, b, .. } | Op::Icmp { a, b, .. } | Op::Fcmp { a, b, .. } => {
                    let pred = match &ins.op {
                        Op::Icmp { pred, .. } => format!(" {}", fmt_ipred(*pred)),
                        Op::Fcmp { pred, .. } => format!(" {}", fmt_fpred(*pred)),
                        _ => String::new(),
                    };
                    format!(
                        "{}{} {}, {}",
                        ins.op.mnemonic(),
                        pred,
                        fmt_operand(a),
                        fmt_operand(b)
                    )
                }
                Op::Un { a, .. } => format!("{} {}", ins.op.mnemonic(), fmt_operand(a)),
                Op::Select { cond, t, f } => format!(
                    "select {}, {}, {}",
                    fmt_operand(cond),
                    fmt_operand(t),
                    fmt_operand(f)
                ),
                Op::Cast { a, to, .. } => {
                    format!("{} {} to {}", ins.op.mnemonic(), fmt_operand(a), to)
                }
                Op::Load { addr, ty } => format!("load {ty}, {}", fmt_operand(addr)),
                Op::Store { addr, value } => {
                    format!("store {}, {}", fmt_operand(value), fmt_operand(addr))
                }
                Op::Gep { base, index } => {
                    format!("gep {}, {}", fmt_operand(base), fmt_operand(index))
                }
                Op::Alloca { words } => format!("alloca {}", fmt_operand(words)),
                Op::Call { func, args } => {
                    format!("call @{}({})", m.func(*func).name, fmt_args(args))
                }
                Op::Output { value } => format!("output {}", fmt_operand(value)),
            };
            let _ = writeln!(s, "  {lhs}{body}  ; sid {}", ins.sid.0);
        }
        let term = match &b.term {
            Term::Br { target, args } => {
                if args.is_empty() {
                    format!("br bb{}", target.0)
                } else {
                    format!("br bb{}({})", target.0, fmt_args(args))
                }
            }
            Term::CondBr {
                cond,
                then_target,
                then_args,
                else_target,
                else_args,
            } => format!(
                "condbr {}, bb{}({}), bb{}({})",
                fmt_operand(cond),
                then_target.0,
                fmt_args(then_args),
                else_target.0,
                fmt_args(else_args)
            ),
            Term::Ret { value: Some(v) } => format!("ret {}", fmt_operand(v)),
            Term::Ret { value: None } => "ret".to_string(),
        };
        let _ = writeln!(s, "  {term}");
    }
    let _ = writeln!(s, "}}");
    s
}

impl std::fmt::Display for Module {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "; module {} ({} static instructions)",
            self.name, self.num_instrs
        )?;
        for g in &self.globals {
            write!(f, "global @{}[{}]", g.name, g.words)?;
            if !g.init.is_empty() {
                let words: Vec<String> = g.init.iter().map(|w| w.to_string()).collect();
                write!(f, " = {}", words.join(", "))?;
            }
            writeln!(f)?;
        }
        for (i, func) in self.functions.iter().enumerate() {
            let marker = if crate::module::FuncId(i as u32) == self.entry {
                " ; entry"
            } else {
                ""
            };
            write!(f, "{}{}", print_function(self, func), marker)?;
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ModuleBuilder;
    use crate::instr::{IPred, Operand};
    use crate::types::Ty;

    #[test]
    fn dump_contains_expected_lines() {
        let mut mb = ModuleBuilder::new("p");
        let _g = mb.global("table", 8);
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let x = f.param(0);
        let y = f.add(x, Operand::i64(7));
        let c = f.icmp(IPred::Slt, y, Operand::i64(100));
        let z = f.select(c, y, x);
        f.output(z);
        f.ret(Some(z));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        let text = m.to_string();
        assert!(text.contains("global @table[8]"), "{text}");
        assert!(text.contains("fn @main(%0: i64) -> i64 {"), "{text}");
        assert!(text.contains("add %0, 7"), "{text}");
        assert!(text.contains("icmp slt"), "{text}");
        assert!(text.contains("; sid 0"), "{text}");
        assert!(text.contains("ret %3"), "{text}");
    }
}

//! PIR instructions, opcodes, and terminators.

use crate::module::{BlockId, Const, FuncId, ValueId};
use crate::types::Ty;
use serde::{Deserialize, Serialize};

/// Module-wide static-instruction id. Dense in `0..module.num_instrs`,
/// assigned by the builder in program order. This is the identity used by
/// fault injection, SDC scoring, pruning groups, and execution profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstrId(pub u32);

/// An instruction operand: a virtual register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    Value(ValueId),
    Const(Const),
}

impl Operand {
    pub fn i64(v: i64) -> Operand {
        Operand::Const(Const::i64(v))
    }
    pub fn i32(v: i32) -> Operand {
        Operand::Const(Const::i32(v))
    }
    pub fn f64(v: f64) -> Operand {
        Operand::Const(Const::f64(v))
    }
    pub fn bool(v: bool) -> Operand {
        Operand::Const(Const::bool(v))
    }
    /// The value id if this operand is a register.
    pub fn value(self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(v),
            Operand::Const(_) => None,
        }
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Operand {
        Operand::Value(v)
    }
}

/// Integer comparison predicates (LLVM `icmp`). All integer comparisons
/// are signed except `Ult`, which the address-check idiom uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
}

/// Float comparison predicates (ordered semantics: NaN compares false).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FPred {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
}

/// Two-operand arithmetic / bitwise opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    FAdd,
    FSub,
    FMul,
    FDiv,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
}

impl BinOp {
    /// True for the bitwise-logic family, which the pruning heuristic of
    /// §4.2.2 treats as subgroup boundaries ("all the logic operators").
    pub fn is_logic(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::LShr | BinOp::AShr
        )
    }

    /// True if the opcode operates on floats.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }
}

/// One-operand opcodes. The math functions model LLVM's `llvm.*.f64`
/// intrinsics as first-class instructions (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    FNeg,
    /// Bitwise complement on integers.
    Not,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Log,
    Floor,
    FAbs,
}

impl UnOp {
    pub fn is_float(self) -> bool {
        !matches!(self, UnOp::Not)
    }
}

/// Conversion opcodes (LLVM cast family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CastKind {
    /// Integer truncation to a narrower integer type.
    Trunc,
    /// Zero extension to a wider integer type.
    ZExt,
    /// Sign extension to a wider integer type.
    SExt,
    /// Float to signed integer (round toward zero; saturating on overflow
    /// — LLVM's freeze-free behaviour would be poison, we saturate so the
    /// VM stays deterministic under injected faults).
    FpToSi,
    /// Signed integer to float.
    SiToFp,
    /// Bit reinterpretation between i64 and f64.
    Bitcast,
    /// Pointer to i64 (identity on bits).
    PtrToInt,
    /// i64 to pointer (identity on bits).
    IntToPtr,
}

/// Instruction payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Two-operand arithmetic; result type equals operand type.
    Bin { op: BinOp, a: Operand, b: Operand },
    /// One-operand op.
    Un { op: UnOp, a: Operand },
    /// Integer compare producing `i1`.
    Icmp { pred: IPred, a: Operand, b: Operand },
    /// Float compare producing `i1`.
    Fcmp { pred: FPred, a: Operand, b: Operand },
    /// `cond ? t : f`; `t` and `f` share the result type.
    Select {
        cond: Operand,
        t: Operand,
        f: Operand,
    },
    /// Type conversion.
    Cast { kind: CastKind, a: Operand, to: Ty },
    /// Memory read of one word, reinterpreted at type `ty`.
    Load { addr: Operand, ty: Ty },
    /// Memory write of one word. No result value (not injectable —
    /// matches LLFI's return-value fault model).
    Store { addr: Operand, value: Operand },
    /// Pointer arithmetic: `base + index` in words (LLVM `getelementptr`
    /// with unit element size; multi-dimensional indexing is lowered by
    /// the frontend into explicit multiplies feeding a `Gep`).
    Gep { base: Operand, index: Operand },
    /// Stack allocation of `words` 64-bit words, live until the enclosing
    /// function returns. Result is a pointer.
    Alloca { words: Operand },
    /// Direct call. `None` result for void callees.
    Call { func: FuncId, args: Vec<Operand> },
    /// Appends a word to the program's observable output stream — the
    /// data compared against the golden run to classify SDCs.
    Output { value: Operand },
}

/// Coarse opcode classes. `Compare`, `Logic`, `BitManip`, and `Pointer`
/// are the "subgroup boundary" classes of the pruning heuristic (§4.2.2:
/// CMP, logic operators, bit manipulation like TRUNC/SEXT, and pointer
/// operations consistently differentiate SDC probability from their
/// data-dependent neighbours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    Arithmetic,
    Compare,
    Logic,
    BitManip,
    Pointer,
    Memory,
    Call,
    Output,
}

impl Op {
    /// The opcode's class for pruning purposes.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Bin { op, .. } if op.is_logic() => OpClass::Logic,
            Op::Bin { .. } => OpClass::Arithmetic,
            Op::Un { op: UnOp::Not, .. } => OpClass::Logic,
            Op::Un { .. } => OpClass::Arithmetic,
            Op::Icmp { .. } | Op::Fcmp { .. } => OpClass::Compare,
            Op::Select { .. } => OpClass::Arithmetic,
            Op::Cast { .. } => OpClass::BitManip,
            Op::Load { .. } | Op::Store { .. } => OpClass::Memory,
            Op::Gep { .. } | Op::Alloca { .. } => OpClass::Pointer,
            Op::Call { .. } => OpClass::Call,
            Op::Output { .. } => OpClass::Output,
        }
    }

    /// True if the pruning heuristic starts a new subgroup at this opcode.
    pub fn is_group_boundary(&self) -> bool {
        matches!(
            self.class(),
            OpClass::Compare | OpClass::Logic | OpClass::BitManip | OpClass::Pointer
        )
    }

    /// Operands read by this instruction.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Op::Bin { a, b, .. } | Op::Icmp { a, b, .. } | Op::Fcmp { a, b, .. } => {
                vec![*a, *b]
            }
            Op::Un { a, .. } | Op::Cast { a, .. } => vec![*a],
            Op::Select { cond, t, f } => vec![*cond, *t, *f],
            Op::Load { addr, .. } => vec![*addr],
            Op::Store { addr, value } => vec![*addr, *value],
            Op::Gep { base, index } => vec![*base, *index],
            Op::Alloca { words } => vec![*words],
            Op::Call { args, .. } => args.clone(),
            Op::Output { value } => vec![*value],
        }
    }

    /// Short mnemonic for printing.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Bin { op, .. } => match op {
                BinOp::Add => "add",
                BinOp::Sub => "sub",
                BinOp::Mul => "mul",
                BinOp::SDiv => "sdiv",
                BinOp::SRem => "srem",
                BinOp::FAdd => "fadd",
                BinOp::FSub => "fsub",
                BinOp::FMul => "fmul",
                BinOp::FDiv => "fdiv",
                BinOp::And => "and",
                BinOp::Or => "or",
                BinOp::Xor => "xor",
                BinOp::Shl => "shl",
                BinOp::LShr => "lshr",
                BinOp::AShr => "ashr",
            },
            Op::Un { op, .. } => match op {
                UnOp::FNeg => "fneg",
                UnOp::Not => "not",
                UnOp::Sqrt => "sqrt",
                UnOp::Sin => "sin",
                UnOp::Cos => "cos",
                UnOp::Exp => "exp",
                UnOp::Log => "log",
                UnOp::Floor => "floor",
                UnOp::FAbs => "fabs",
            },
            Op::Icmp { .. } => "icmp",
            Op::Fcmp { .. } => "fcmp",
            Op::Select { .. } => "select",
            Op::Cast { kind, .. } => match kind {
                CastKind::Trunc => "trunc",
                CastKind::ZExt => "zext",
                CastKind::SExt => "sext",
                CastKind::FpToSi => "fptosi",
                CastKind::SiToFp => "sitofp",
                CastKind::Bitcast => "bitcast",
                CastKind::PtrToInt => "ptrtoint",
                CastKind::IntToPtr => "inttoptr",
            },
            Op::Load { .. } => "load",
            Op::Store { .. } => "store",
            Op::Gep { .. } => "gep",
            Op::Alloca { .. } => "alloca",
            Op::Call { .. } => "call",
            Op::Output { .. } => "output",
        }
    }
}

/// A static instruction: an id, an opcode payload, and an optional result
/// register. `result == None` exactly for `Store` / `Output` / void
/// `Call`, which the fault model does not inject into.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instr {
    pub sid: InstrId,
    pub op: Op,
    pub result: Option<ValueId>,
}

/// Block terminators. Terminators are not static instructions for FI
/// purposes (they produce no value), matching the paper's fault model:
/// control flow goes wrong only via corrupted *condition values*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// Unconditional jump, passing `args` to the target's block params.
    Br { target: BlockId, args: Vec<Operand> },
    /// Two-way conditional branch; both edges carry block arguments.
    CondBr {
        cond: Operand,
        then_target: BlockId,
        then_args: Vec<Operand>,
        else_target: BlockId,
        else_args: Vec<Operand>,
    },
    /// Function return.
    Ret { value: Option<Operand> },
}

impl Term {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Br { target, .. } => vec![*target],
            Term::CondBr {
                then_target,
                else_target,
                ..
            } => vec![*then_target, *else_target],
            Term::Ret { .. } => vec![],
        }
    }

    /// Operands read by the terminator.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Term::Br { args, .. } => args.clone(),
            Term::CondBr {
                cond,
                then_args,
                else_args,
                ..
            } => {
                let mut v = vec![*cond];
                v.extend_from_slice(then_args);
                v.extend_from_slice(else_args);
                v
            }
            Term::Ret { value } => value.iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_classes() {
        let icmp = Op::Icmp {
            pred: IPred::Eq,
            a: Operand::i64(0),
            b: Operand::i64(1),
        };
        let add = Op::Bin {
            op: BinOp::Add,
            a: Operand::i64(0),
            b: Operand::i64(1),
        };
        let xor = Op::Bin {
            op: BinOp::Xor,
            a: Operand::i64(0),
            b: Operand::i64(1),
        };
        let cast = Op::Cast {
            kind: CastKind::SExt,
            a: Operand::i32(0),
            to: Ty::I64,
        };
        let gep = Op::Gep {
            base: Operand::i64(0),
            index: Operand::i64(1),
        };
        assert!(icmp.is_group_boundary());
        assert!(xor.is_group_boundary());
        assert!(cast.is_group_boundary());
        assert!(gep.is_group_boundary());
        assert!(!add.is_group_boundary());
    }

    #[test]
    fn operand_lists() {
        let sel = Op::Select {
            cond: Operand::bool(true),
            t: Operand::i64(1),
            f: Operand::i64(2),
        };
        assert_eq!(sel.operands().len(), 3);
        let st = Op::Store {
            addr: Operand::i64(0),
            value: Operand::i64(1),
        };
        assert_eq!(st.operands().len(), 2);
    }

    #[test]
    fn term_successors() {
        let br = Term::Br {
            target: BlockId(3),
            args: vec![],
        };
        assert_eq!(br.successors(), vec![BlockId(3)]);
        let ret = Term::Ret { value: None };
        assert!(ret.successors().is_empty());
    }

    #[test]
    fn mnemonics_distinct_for_bins() {
        let mut seen = std::collections::HashSet::new();
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::SDiv,
            BinOp::SRem,
            BinOp::FAdd,
            BinOp::FSub,
            BinOp::FMul,
            BinOp::FDiv,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::LShr,
            BinOp::AShr,
        ] {
            let i = Op::Bin {
                op,
                a: Operand::i64(0),
                b: Operand::i64(0),
            };
            assert!(
                seen.insert(i.mnemonic()),
                "duplicate mnemonic {}",
                i.mnemonic()
            );
        }
    }
}

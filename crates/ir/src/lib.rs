//! PIR — a typed, register-based intermediate representation.
//!
//! PIR stands in for LLVM IR in this reproduction of PEPPA-X. The paper
//! (§2.3) uses LLVM because its IR (1) is typed and maps back to source
//! constructs, (2) is platform-neutral, and (3) has existing fault
//! injectors (LLFI). PEPPA-X itself only needs three properties of the IR:
//!
//! 1. a notion of *static instruction* with an opcode and a typed result
//!    value (the unit of fault injection and of SDC-sensitivity scoring);
//! 2. static *def-use dataflow* between instructions (the pruning
//!    heuristic of §4.2.2 groups instructions along data dependencies);
//! 3. an executable semantics that yields *dynamic instruction counts*
//!    per static instruction (the `N_i / N_total` term of Eq. 2).
//!
//! PIR provides exactly these. Differences from LLVM IR, and why they are
//! immaterial here, are documented in `DESIGN.md`:
//!
//! * **Block parameters instead of φ-nodes.** Branches pass arguments to
//!   their target block. This is the MLIR/Cranelift formulation and is
//!   semantically equivalent to φ-nodes.
//! * **Word-addressed memory.** Pointers are 64-bit word indices into a
//!   flat memory; `getelementptr` becomes a single `Gep` add-scale op.
//! * **Math intrinsics as unary instructions.** LLVM would emit calls to
//!   `llvm.sqrt.f64` etc.; PIR has `Sqrt`/`Sin`/... opcodes. LLFI treats
//!   intrinsic results as injectable return values, and so do we.

pub mod builder;
pub mod instr;
pub mod module;
pub mod parse;
pub mod printer;
pub mod types;
pub mod verify;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use instr::{BinOp, CastKind, FPred, IPred, Instr, InstrId, Op, OpClass, Operand, Term, UnOp};
pub use module::{Block, BlockId, Const, FuncId, Function, Global, Module, ValueId};
pub use parse::{parse_module, ParseError};
pub use types::Ty;
pub use verify::{verify, VerifyError};

//! The PIR type system: a deliberately small subset of LLVM's first-class
//! types, sufficient for the seven benchmark kernels.

use serde::{Deserialize, Serialize};

/// A first-class PIR type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Ty {
    /// 1-bit boolean (comparison results, branch conditions).
    I1,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// IEEE-754 binary64 float.
    F64,
    /// Pointer: a 64-bit word index into the flat VM memory.
    Ptr,
}

impl Ty {
    /// Number of *meaningful* bits in a value of this type. Fault
    /// injection flips a uniformly random bit among these (LLFI flips a
    /// random bit of the destination register width).
    pub fn bits(self) -> u32 {
        match self {
            Ty::I1 => 1,
            Ty::I32 => 32,
            Ty::I64 | Ty::F64 | Ty::Ptr => 64,
        }
    }

    /// True for the integer family (including booleans and pointers).
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I1 | Ty::I32 | Ty::I64 | Ty::Ptr)
    }

    /// True for floating point.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F64)
    }

    /// Masks a raw 64-bit payload down to this type's width, preserving
    /// the canonical in-register representation (sign-extension is applied
    /// at *use*, not at rest; narrow values are stored zero-padded).
    pub fn truncate_bits(self, bits: u64) -> u64 {
        match self.bits() {
            64 => bits,
            w => bits & ((1u64 << w) - 1),
        }
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Ty::I1 => "i1",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::F64 => "f64",
            Ty::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Ty::I1.bits(), 1);
        assert_eq!(Ty::I32.bits(), 32);
        assert_eq!(Ty::I64.bits(), 64);
        assert_eq!(Ty::F64.bits(), 64);
        assert_eq!(Ty::Ptr.bits(), 64);
    }

    #[test]
    fn truncation() {
        assert_eq!(Ty::I1.truncate_bits(0xff), 1);
        assert_eq!(Ty::I32.truncate_bits(u64::MAX), 0xffff_ffff);
        assert_eq!(Ty::I64.truncate_bits(u64::MAX), u64::MAX);
    }

    #[test]
    fn families() {
        assert!(Ty::I1.is_int() && Ty::Ptr.is_int());
        assert!(Ty::F64.is_float() && !Ty::F64.is_int());
    }

    #[test]
    fn display() {
        assert_eq!(Ty::F64.to_string(), "f64");
        assert_eq!(Ty::Ptr.to_string(), "ptr");
    }
}

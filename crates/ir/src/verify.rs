//! Structural and type verification of PIR modules.
//!
//! The verifier enforces the invariants the VM and the analyses rely on:
//! well-typed operands, matching branch-argument lists, single assignment,
//! and definite-definition-before-use along every CFG path (checked with a
//! forward must-be-defined dataflow, the block-parameter analogue of
//! LLVM's dominance check).

use crate::instr::{CastKind, Op, Operand, Term, UnOp};
use crate::module::{BlockId, Function, Module, ValueId};
use crate::types::Ty;

/// A verification failure, with enough context to locate the offender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub function: String,
    pub block: Option<u32>,
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.block {
            Some(b) => write!(f, "{}: bb{}: {}", self.function, b, self.message),
            None => write!(f, "{}: {}", self.function, self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies the whole module; returns the first error found.
pub fn verify(m: &Module) -> Result<(), VerifyError> {
    if m.functions.is_empty() {
        return Err(err("<module>", None, "module has no functions"));
    }
    if m.entry.0 as usize >= m.functions.len() {
        return Err(err("<module>", None, "entry function id out of range"));
    }
    for f in &m.functions {
        verify_function(m, f)?;
    }
    let mut sids: Vec<u32> = m
        .functions
        .iter()
        .flat_map(|f| f.instrs().map(|i| i.sid.0))
        .collect();
    sids.sort_unstable();
    for (expect, got) in sids.iter().enumerate() {
        if expect as u32 != *got {
            return Err(err("<module>", None, "instruction sids are not dense"));
        }
    }
    if sids.len() != m.num_instrs {
        return Err(err(
            "<module>",
            None,
            "num_instrs does not match instruction count",
        ));
    }
    Ok(())
}

fn err(func: &str, block: Option<BlockId>, msg: impl Into<String>) -> VerifyError {
    VerifyError {
        function: func.to_string(),
        block: block.map(|b| b.0),
        message: msg.into(),
    }
}

fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    if f.blocks.is_empty() {
        return Err(err(&f.name, None, "function has no blocks"));
    }
    if !f.blocks[0].params.is_empty() {
        return Err(err(
            &f.name,
            Some(BlockId(0)),
            "entry block must have no parameters",
        ));
    }

    // Single assignment: every value defined at most once.
    let nvals = f.value_types.len();
    let mut defined_by = vec![false; nvals];
    defined_by[..f.params.len()].fill(true);
    for (bi, b) in f.blocks.iter().enumerate() {
        for &p in &b.params {
            let slot = &mut defined_by[p.0 as usize];
            if *slot {
                return Err(err(
                    &f.name,
                    Some(BlockId(bi as u32)),
                    "value defined twice (param)",
                ));
            }
            *slot = true;
        }
        for ins in &b.instrs {
            if let Some(r) = ins.result {
                let slot = &mut defined_by[r.0 as usize];
                if *slot {
                    return Err(err(
                        &f.name,
                        Some(BlockId(bi as u32)),
                        "value defined twice",
                    ));
                }
                *slot = true;
            }
        }
    }

    for (bi, b) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        for ins in &b.instrs {
            check_instr_types(m, f, bid, ins)?;
        }
        check_term_types(f, bid, &b.term)?;
        for succ in b.term.successors() {
            if succ.0 as usize >= f.blocks.len() {
                return Err(err(&f.name, Some(bid), "branch target out of range"));
            }
        }
    }

    // CFG checks: every block must be reachable from the entry (an
    // unreachable block can never bind its parameters and hides dead
    // code from the analyses), and a block with parameters must have a
    // predecessor edge supplying arguments for each of them (the
    // per-edge arity check above covers only edges that exist).
    let reach = f.reachable_blocks();
    let mut pred_count = vec![0usize; f.blocks.len()];
    for b in &f.blocks {
        for s in b.term.successors() {
            pred_count[s.0 as usize] += 1;
        }
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        if !reach[bi] {
            return Err(err(&f.name, Some(bid), "unreachable block"));
        }
        if bi != 0 && !b.params.is_empty() && pred_count[bi] == 0 {
            return Err(err(
                &f.name,
                Some(bid),
                "block with parameters has no predecessor edge",
            ));
        }
    }

    check_defined_before_use(f)?;
    Ok(())
}

fn ty_of(f: &Function, o: &Operand) -> Ty {
    f.operand_ty(o)
}

fn expect_ty(
    f: &Function,
    b: BlockId,
    o: &Operand,
    want: Ty,
    what: &str,
) -> Result<(), VerifyError> {
    let got = ty_of(f, o);
    if got != want {
        return Err(err(
            &f.name,
            Some(b),
            format!("{what}: expected {want}, got {got}"),
        ));
    }
    Ok(())
}

fn check_instr_types(
    m: &Module,
    f: &Function,
    b: BlockId,
    ins: &crate::instr::Instr,
) -> Result<(), VerifyError> {
    // Operand registers in range.
    for o in ins.op.operands() {
        if let Some(v) = o.value() {
            if v.0 as usize >= f.value_types.len() {
                return Err(err(&f.name, Some(b), "operand value id out of range"));
            }
        }
    }
    let result_ty = ins.result.map(|r| f.ty_of(r));
    match &ins.op {
        Op::Bin { op, a, b: rhs } => {
            let ta = ty_of(f, a);
            let tb = ty_of(f, rhs);
            if ta != tb {
                return Err(err(
                    &f.name,
                    Some(b),
                    format!("bin operands differ: {ta} vs {tb}"),
                ));
            }
            if op.is_float() && !ta.is_float() {
                return Err(err(&f.name, Some(b), "float opcode on integer operands"));
            }
            if !op.is_float() && ta.is_float() {
                return Err(err(&f.name, Some(b), "integer opcode on float operands"));
            }
            if ta == Ty::Ptr {
                return Err(err(&f.name, Some(b), "arithmetic on ptr (use gep)"));
            }
            if result_ty != Some(ta) {
                return Err(err(&f.name, Some(b), "bin result type mismatch"));
            }
        }
        Op::Un { op, a } => {
            let ta = ty_of(f, a);
            match op {
                UnOp::Not => {
                    if !ta.is_int() || ta == Ty::Ptr {
                        return Err(err(&f.name, Some(b), "not requires an integer"));
                    }
                }
                _ => {
                    if ta != Ty::F64 {
                        return Err(err(&f.name, Some(b), "float unary op requires f64"));
                    }
                }
            }
            if result_ty != Some(ta) {
                return Err(err(&f.name, Some(b), "unary result type mismatch"));
            }
        }
        Op::Icmp { a, b: rhs, .. } => {
            let ta = ty_of(f, a);
            let tb = ty_of(f, rhs);
            if ta != tb || !ta.is_int() {
                return Err(err(
                    &f.name,
                    Some(b),
                    "icmp requires matching integer operands",
                ));
            }
            if result_ty != Some(Ty::I1) {
                return Err(err(&f.name, Some(b), "icmp must produce i1"));
            }
        }
        Op::Fcmp { a, b: rhs, .. } => {
            expect_ty(f, b, a, Ty::F64, "fcmp lhs")?;
            expect_ty(f, b, rhs, Ty::F64, "fcmp rhs")?;
            if result_ty != Some(Ty::I1) {
                return Err(err(&f.name, Some(b), "fcmp must produce i1"));
            }
        }
        Op::Select { cond, t, f: fv } => {
            expect_ty(f, b, cond, Ty::I1, "select cond")?;
            let tt = ty_of(f, t);
            if tt != ty_of(f, fv) || result_ty != Some(tt) {
                return Err(err(&f.name, Some(b), "select arm/result types mismatch"));
            }
        }
        Op::Cast { kind, a, to } => {
            let from = ty_of(f, a);
            let ok = match kind {
                CastKind::Trunc => from.is_int() && to.is_int() && to.bits() < from.bits(),
                CastKind::ZExt | CastKind::SExt => {
                    from.is_int() && to.is_int() && to.bits() > from.bits()
                }
                CastKind::FpToSi => from == Ty::F64 && matches!(to, Ty::I32 | Ty::I64),
                CastKind::SiToFp => matches!(from, Ty::I1 | Ty::I32 | Ty::I64) && *to == Ty::F64,
                CastKind::Bitcast => {
                    (from == Ty::F64 && *to == Ty::I64) || (from == Ty::I64 && *to == Ty::F64)
                }
                CastKind::PtrToInt => from == Ty::Ptr && *to == Ty::I64,
                CastKind::IntToPtr => from == Ty::I64 && *to == Ty::Ptr,
            };
            if !ok {
                return Err(err(
                    &f.name,
                    Some(b),
                    format!("invalid cast {from} -> {to}"),
                ));
            }
            if result_ty != Some(*to) {
                return Err(err(&f.name, Some(b), "cast result type mismatch"));
            }
        }
        Op::Load { addr, ty } => {
            expect_ty(f, b, addr, Ty::Ptr, "load address")?;
            if result_ty != Some(*ty) {
                return Err(err(&f.name, Some(b), "load result type mismatch"));
            }
        }
        Op::Store { addr, .. } => {
            expect_ty(f, b, addr, Ty::Ptr, "store address")?;
            if ins.result.is_some() {
                return Err(err(&f.name, Some(b), "store must not produce a value"));
            }
        }
        Op::Gep { base, index } => {
            expect_ty(f, b, base, Ty::Ptr, "gep base")?;
            expect_ty(f, b, index, Ty::I64, "gep index")?;
            if result_ty != Some(Ty::Ptr) {
                return Err(err(&f.name, Some(b), "gep must produce ptr"));
            }
        }
        Op::Alloca { words } => {
            expect_ty(f, b, words, Ty::I64, "alloca size")?;
            if result_ty != Some(Ty::Ptr) {
                return Err(err(&f.name, Some(b), "alloca must produce ptr"));
            }
        }
        Op::Call { func, args } => {
            if func.0 as usize >= m.functions.len() {
                return Err(err(&f.name, Some(b), "call target out of range"));
            }
            let callee = m.func(*func);
            if callee.params.len() != args.len() {
                return Err(err(&f.name, Some(b), "call arity mismatch"));
            }
            for (i, (arg, want)) in args.iter().zip(&callee.params).enumerate() {
                if ty_of(f, arg) != *want {
                    return Err(err(&f.name, Some(b), format!("call arg {i} type mismatch")));
                }
            }
            if result_ty != callee.ret {
                return Err(err(&f.name, Some(b), "call result/ret type mismatch"));
            }
        }
        Op::Output { .. } => {
            if ins.result.is_some() {
                return Err(err(&f.name, Some(b), "output must not produce a value"));
            }
        }
    }
    Ok(())
}

fn check_term_types(f: &Function, bid: BlockId, term: &Term) -> Result<(), VerifyError> {
    let check_args = |target: BlockId, args: &[Operand]| -> Result<(), VerifyError> {
        let tb = &f.blocks[target.0 as usize];
        if tb.params.len() != args.len() {
            return Err(err(&f.name, Some(bid), "branch argument count mismatch"));
        }
        for (a, &p) in args.iter().zip(&tb.params) {
            if ty_of(f, a) != f.ty_of(p) {
                return Err(err(&f.name, Some(bid), "branch argument type mismatch"));
            }
        }
        Ok(())
    };
    match term {
        Term::Br { target, args } => {
            if target.0 as usize >= f.blocks.len() {
                return Err(err(&f.name, Some(bid), "br target out of range"));
            }
            check_args(*target, args)
        }
        Term::CondBr {
            cond,
            then_target,
            then_args,
            else_target,
            else_args,
        } => {
            expect_ty(f, bid, cond, Ty::I1, "condbr condition")?;
            if then_target.0 as usize >= f.blocks.len() || else_target.0 as usize >= f.blocks.len()
            {
                return Err(err(&f.name, Some(bid), "condbr target out of range"));
            }
            check_args(*then_target, then_args)?;
            check_args(*else_target, else_args)
        }
        Term::Ret { value } => match (value, f.ret) {
            (Some(v), Some(want)) => expect_ty(f, bid, v, want, "return value"),
            (None, None) => Ok(()),
            (Some(_), None) => Err(err(&f.name, Some(bid), "returning a value from void fn")),
            (None, Some(_)) => Err(err(&f.name, Some(bid), "missing return value")),
        },
    }
}

/// Forward must-analysis: a value may be used in block B only if it is
/// defined on *every* path from entry to that use.
fn check_defined_before_use(f: &Function) -> Result<(), VerifyError> {
    let nb = f.blocks.len();
    let nv = f.value_types.len();

    // in_defined[b] = set of values definitely defined at entry of b.
    // Start optimistic (all defined) except entry, and intersect.
    let mut in_defined: Vec<Vec<bool>> = vec![vec![true; nv]; nb];
    let mut entry_set = vec![false; nv];
    entry_set[..f.params.len()].fill(true);
    in_defined[0] = entry_set;

    let out_of = |inp: &[bool], b: &crate::module::Block| -> Vec<bool> {
        let mut s = inp.to_vec();
        for &p in &b.params {
            s[p.0 as usize] = true;
        }
        for ins in &b.instrs {
            if let Some(r) = ins.result {
                s[r.0 as usize] = true;
            }
        }
        s
    };

    // Fixpoint over the CFG.
    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..nb {
            let out = out_of(&in_defined[bi], &f.blocks[bi]);
            for succ in f.blocks[bi].term.successors() {
                let si = succ.0 as usize;
                let mut any = false;
                for v in 0..nv {
                    if in_defined[si][v]
                        && !out[v]
                        && !f.blocks[si].params.contains(&ValueId(v as u32))
                    {
                        in_defined[si][v] = false;
                        any = true;
                    }
                }
                changed |= any;
            }
        }
    }

    for (bi, b) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        // Walk the block, tracking definitions as they happen, to catch
        // uses before defs inside the block.
        let mut defined = in_defined[bi].clone();
        for &p in &b.params {
            defined[p.0 as usize] = true;
        }
        let check_use = |o: &Operand, defined: &[bool]| -> Result<(), VerifyError> {
            if let Some(v) = o.value() {
                if !defined[v.0 as usize] {
                    return Err(err(
                        &f.name,
                        Some(bid),
                        format!("use of value v{} before definition", v.0),
                    ));
                }
            }
            Ok(())
        };
        for ins in &b.instrs {
            for o in ins.op.operands() {
                check_use(&o, &defined)?;
            }
            if let Some(r) = ins.result {
                defined[r.0 as usize] = true;
            }
        }
        for o in b.term.operands() {
            check_use(&o, &defined)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::IPred;

    fn good_module() -> Module {
        let mut mb = ModuleBuilder::new("ok");
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let x = f.param(0);
        let (then_b, _) = f.new_block(&[]);
        let (join, jv) = f.new_block(&[Ty::I64]);
        let c = f.icmp(IPred::Sgt, x, Operand::i64(0));
        f.cond_br(c, then_b, &[], join, &[Operand::i64(0)]);
        f.switch_to(then_b);
        let d = f.add(x, Operand::i64(1));
        f.br(join, &[d]);
        f.switch_to(join);
        f.output(jv[0]);
        f.ret(Some(jv[0]));
        f.finish();
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn good_module_verifies() {
        verify(&good_module()).unwrap();
    }

    #[test]
    fn detects_type_mismatch() {
        let mut m = good_module();
        // Corrupt: make the add mix i64 and f64.
        let f = &mut m.functions[0];
        if let Op::Bin { b, .. } = &mut f.blocks[1].instrs[0].op {
            *b = Operand::f64(1.0);
        }
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("differ"), "{e}");
    }

    #[test]
    fn detects_branch_arity_mismatch() {
        let mut m = good_module();
        let f = &mut m.functions[0];
        if let Term::Br { args, .. } = &mut f.blocks[1].term {
            args.clear();
        }
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("argument count"), "{e}");
    }

    #[test]
    fn detects_use_before_def() {
        // Block 1 defines v; block 2 uses v but is reachable without
        // passing through block 1.
        let mut mb = ModuleBuilder::new("ubd");
        let main = mb.declare("main", &[Ty::I1], None);
        let mut f = mb.define(main);
        let c = f.param(0);
        let (b1, _) = f.new_block(&[]);
        let (b2, _) = f.new_block(&[]);
        f.cond_br(c, b1, &[], b2, &[]);
        f.switch_to(b1);
        let v = f.add(Operand::i64(1), Operand::i64(2));
        f.output(v);
        f.br(b2, &[]);
        f.switch_to(b2);
        f.finish_use(v);
        f.ret(None);
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("before definition"), "{e}");
    }

    impl crate::builder::FunctionBuilder<'_> {
        /// Test helper: emits `output v` in the current block.
        fn finish_use(&mut self, v: Operand) {
            self.output(v);
        }
    }

    #[test]
    fn detects_missing_return_value() {
        let mut mb = ModuleBuilder::new("mr");
        let main = mb.declare("main", &[], Some(Ty::I64));
        let mut f = mb.define(main);
        f.ret(None);
        f.finish();
        mb.set_entry(main);
        let e = verify(&mb.finish()).unwrap_err();
        assert!(e.message.contains("missing return"), "{e}");
    }

    #[test]
    fn detects_bad_cast() {
        let mut mb = ModuleBuilder::new("bc");
        let main = mb.declare("main", &[], None);
        let mut f = mb.define(main);
        // Trunc i64 -> i64 is invalid (must narrow).
        let _ = f.cast(CastKind::Trunc, Operand::i64(1), Ty::I64);
        f.ret(None);
        f.finish();
        mb.set_entry(main);
        let e = verify(&mb.finish()).unwrap_err();
        assert!(e.message.contains("invalid cast"), "{e}");
    }
}

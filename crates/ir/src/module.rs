//! Module / function / block containers for PIR.

use crate::instr::{Instr, InstrId, Op, Operand, Term};
use crate::types::Ty;
use serde::{Deserialize, Serialize};

/// Index of a function within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Index of a basic block within its [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// A virtual register local to one function. Function parameters occupy
/// the first ids, followed by block parameters and instruction results in
/// creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ValueId(pub u32);

/// A typed constant, stored as raw bits (`f64` constants hold
/// `f64::to_bits`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Const {
    pub ty: Ty,
    pub bits: u64,
}

impl Const {
    pub fn i64(v: i64) -> Const {
        Const {
            ty: Ty::I64,
            bits: v as u64,
        }
    }
    pub fn i32(v: i32) -> Const {
        Const {
            ty: Ty::I32,
            bits: (v as u32) as u64,
        }
    }
    pub fn bool(v: bool) -> Const {
        Const {
            ty: Ty::I1,
            bits: v as u64,
        }
    }
    pub fn f64(v: f64) -> Const {
        Const {
            ty: Ty::F64,
            bits: v.to_bits(),
        }
    }
    pub fn ptr(words: u64) -> Const {
        Const {
            ty: Ty::Ptr,
            bits: words,
        }
    }
    /// The constant's value interpreted as f64 (only valid for `F64`).
    pub fn as_f64(self) -> f64 {
        debug_assert_eq!(self.ty, Ty::F64);
        f64::from_bits(self.bits)
    }
    /// The constant's value interpreted as a signed integer.
    pub fn as_i64(self) -> i64 {
        match self.ty {
            Ty::I32 => self.bits as u32 as i32 as i64,
            _ => self.bits as i64,
        }
    }
}

/// A basic block: a parameter list (the φ-replacement), a straight-line
/// instruction body, and one terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Values bound on entry by the predecessor's branch arguments.
    pub params: Vec<ValueId>,
    /// Non-terminator instructions in execution order.
    pub instrs: Vec<Instr>,
    /// The block terminator.
    pub term: Term,
}

/// A PIR function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    pub name: String,
    /// Parameter types; parameters are values `0..params.len()`.
    pub params: Vec<Ty>,
    /// Return type; `None` for void functions.
    pub ret: Option<Ty>,
    /// Basic blocks; block 0 is the entry and has no parameters.
    pub blocks: Vec<Block>,
    /// Type of every value in the function, indexed by [`ValueId`].
    pub value_types: Vec<Ty>,
}

impl Function {
    /// Type of a value.
    pub fn ty_of(&self, v: ValueId) -> Ty {
        self.value_types[v.0 as usize]
    }

    /// The block with the given id.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.0 as usize]
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Successor block ids of one block (from its terminator).
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        self.block(b).term.successors()
    }

    /// `reachable[b]`: whether block `b` is reachable from the entry
    /// block by following terminator edges.
    pub fn reachable_blocks(&self) -> Vec<bool> {
        let mut reach = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return reach;
        }
        let mut stack = vec![BlockId(0)];
        reach[0] = true;
        while let Some(b) = stack.pop() {
            for s in self.block(b).term.successors() {
                let i = s.0 as usize;
                if i < reach.len() && !reach[i] {
                    reach[i] = true;
                    stack.push(s);
                }
            }
        }
        reach
    }

    /// Type of an operand.
    pub fn operand_ty(&self, op: &Operand) -> Ty {
        match op {
            Operand::Value(v) => self.ty_of(*v),
            Operand::Const(c) => c.ty,
        }
    }

    /// Iterates all instructions of the function in block order.
    pub fn instrs(&self) -> impl Iterator<Item = &Instr> {
        self.blocks.iter().flat_map(|b| b.instrs.iter())
    }

    /// Number of static (non-terminator) instructions.
    pub fn num_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

/// A statically allocated global array of 64-bit words.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Global {
    pub name: String,
    /// Size in 64-bit words.
    pub words: u64,
    /// Optional initializer (shorter than `words` means the tail is
    /// zero-filled).
    pub init: Vec<u64>,
}

/// A complete PIR program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    pub name: String,
    pub functions: Vec<Function>,
    pub globals: Vec<Global>,
    /// The function executed by the VM; its parameters are the *program
    /// input* that PEPPA-X searches over.
    pub entry: FuncId,
    /// Total number of static instructions across all functions. Assigned
    /// by the builder; instruction `sid`s are dense in `0..num_instrs`.
    pub num_instrs: usize,
}

impl Module {
    pub fn func(&self, f: FuncId) -> &Function {
        &self.functions[f.0 as usize]
    }

    pub fn entry_func(&self) -> &Function {
        self.func(self.entry)
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Base word address of each global in the VM's memory layout:
    /// globals are laid out contiguously from address 1 (address 0 is
    /// reserved as a poison/null word so a null dereference traps).
    pub fn global_layout(&self) -> Vec<u64> {
        let mut addr = 1u64;
        let mut out = Vec::with_capacity(self.globals.len());
        for g in &self.globals {
            out.push(addr);
            addr += g.words;
        }
        out
    }

    /// Total words of global storage, including the reserved null word.
    pub fn globals_words(&self) -> u64 {
        1 + self.globals.iter().map(|g| g.words).sum::<u64>()
    }

    /// Resolves an instruction id to `(function, block, index-in-block)`.
    /// O(#instructions); intended for reporting, not hot paths.
    pub fn locate(&self, sid: InstrId) -> Option<(FuncId, BlockId, usize)> {
        for (fi, f) in self.functions.iter().enumerate() {
            for (bi, b) in f.blocks.iter().enumerate() {
                for (ii, ins) in b.instrs.iter().enumerate() {
                    if ins.sid == sid {
                        return Some((FuncId(fi as u32), BlockId(bi as u32), ii));
                    }
                }
            }
        }
        None
    }

    /// Returns every instruction together with its containing function,
    /// in `sid` order (the builder assigns sids in traversal order).
    pub fn all_instrs(&self) -> Vec<(FuncId, &Instr)> {
        let mut out: Vec<(FuncId, &Instr)> = Vec::with_capacity(self.num_instrs);
        for (fi, f) in self.functions.iter().enumerate() {
            for ins in f.instrs() {
                out.push((FuncId(fi as u32), ins));
            }
        }
        out.sort_by_key(|(_, i)| i.sid);
        out
    }

    /// The opcode of a static instruction, by id.
    pub fn op_of(&self, sid: InstrId) -> Option<&Op> {
        // all_instrs is sid-sorted and sids are dense.
        self.all_instrs().get(sid.0 as usize).map(|(_, i)| &i.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_roundtrips() {
        assert_eq!(Const::i64(-5).as_i64(), -5);
        assert_eq!(Const::i32(-5).as_i64(), -5);
        assert_eq!(Const::f64(2.5).as_f64(), 2.5);
        assert_eq!(Const::bool(true).bits, 1);
        assert_eq!(Const::ptr(9).bits, 9);
    }

    #[test]
    fn global_layout_reserves_null() {
        let m = Module {
            name: "t".into(),
            functions: vec![],
            globals: vec![
                Global {
                    name: "a".into(),
                    words: 4,
                    init: vec![],
                },
                Global {
                    name: "b".into(),
                    words: 2,
                    init: vec![],
                },
            ],
            entry: FuncId(0),
            num_instrs: 0,
        };
        assert_eq!(m.global_layout(), vec![1, 5]);
        assert_eq!(m.globals_words(), 7);
    }
}

//! Programmatic construction of PIR modules.
//!
//! The builder assigns dense module-wide instruction ids (`sid`s) in the
//! order instructions are created, mirroring how LLFI enumerates static
//! instructions of a compiled module.

use crate::instr::{BinOp, CastKind, FPred, IPred, Instr, InstrId, Op, Operand, Term, UnOp};
use crate::module::{Block, BlockId, FuncId, Function, Global, Module, ValueId};
use crate::types::Ty;

/// Builds a [`Module`]: declare globals and function signatures first,
/// then define each function body with [`ModuleBuilder::define`].
pub struct ModuleBuilder {
    name: String,
    functions: Vec<Option<Function>>,
    sigs: Vec<(String, Vec<Ty>, Option<Ty>)>,
    globals: Vec<Global>,
    next_global_addr: u64,
    next_sid: u32,
    entry: Option<FuncId>,
}

impl ModuleBuilder {
    pub fn new(name: &str) -> ModuleBuilder {
        ModuleBuilder {
            name: name.to_string(),
            functions: Vec::new(),
            sigs: Vec::new(),
            globals: Vec::new(),
            next_global_addr: 1, // address 0 is the reserved null word
            next_sid: 0,
            entry: None,
        }
    }

    /// Declares a global array of `words` 64-bit words and returns its
    /// base address as a pointer constant usable as an operand.
    pub fn global(&mut self, name: &str, words: u64) -> Operand {
        self.global_init(name, words, Vec::new())
    }

    /// Declares a global with an initializer (tail zero-filled).
    pub fn global_init(&mut self, name: &str, words: u64, init: Vec<u64>) -> Operand {
        assert!(init.len() as u64 <= words, "initializer longer than global");
        let addr = self.next_global_addr;
        self.next_global_addr += words;
        self.globals.push(Global {
            name: name.to_string(),
            words,
            init,
        });
        Operand::Const(crate::module::Const::ptr(addr))
    }

    /// Declares a function signature; the body is supplied later via
    /// [`define`](Self::define). Call sites may reference the id before
    /// the body exists.
    pub fn declare(&mut self, name: &str, params: &[Ty], ret: Option<Ty>) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(None);
        self.sigs.push((name.to_string(), params.to_vec(), ret));
        id
    }

    /// Signature of a declared function.
    pub fn sig(&self, f: FuncId) -> (&[Ty], Option<Ty>) {
        let (_, p, r) = &self.sigs[f.0 as usize];
        (p, *r)
    }

    /// Starts building the body of a declared function.
    pub fn define(&mut self, f: FuncId) -> FunctionBuilder<'_> {
        let (name, params, ret) = self.sigs[f.0 as usize].clone();
        let value_types = params.clone();
        FunctionBuilder {
            mb: self,
            id: f,
            func: Function {
                name,
                params,
                ret,
                blocks: vec![Block {
                    params: Vec::new(),
                    instrs: Vec::new(),
                    term: Term::Ret { value: None },
                }],
                value_types,
            },
            terminated: vec![false],
            cur: BlockId(0),
        }
    }

    /// Marks the program entry point.
    pub fn set_entry(&mut self, f: FuncId) {
        self.entry = Some(f);
    }

    /// Finalizes the module. Panics if any declared function lacks a body
    /// or no entry was set.
    ///
    /// Unreachable blocks (e.g. the join block a frontend emits after an
    /// `if` whose arms both return) are pruned here and sids renumbered
    /// densely, so finished modules always satisfy the verifier's
    /// reachability invariant.
    pub fn finish(self) -> Module {
        let mut functions: Vec<Function> = self
            .functions
            .into_iter()
            .enumerate()
            .map(|(i, f)| f.unwrap_or_else(|| panic!("function #{i} declared but never defined")))
            .collect();

        let pruned_any = functions.iter_mut().any(prune_unreachable_blocks);
        let mut module = Module {
            name: self.name,
            functions,
            globals: self.globals,
            entry: self.entry.expect("module entry not set"),
            num_instrs: self.next_sid as usize,
        };
        if pruned_any {
            renumber_sids(&mut module);
        }
        module
    }

    fn alloc_sid(&mut self) -> InstrId {
        let id = InstrId(self.next_sid);
        self.next_sid += 1;
        id
    }
}

/// Builds one function body. Dropping without [`finish`](Self::finish)
/// discards the body.
pub struct FunctionBuilder<'a> {
    mb: &'a mut ModuleBuilder,
    id: FuncId,
    func: Function,
    terminated: Vec<bool>,
    cur: BlockId,
}

impl<'a> FunctionBuilder<'a> {
    /// The `i`-th function parameter as an operand.
    pub fn param(&self, i: usize) -> Operand {
        assert!(i < self.func.params.len(), "param index out of range");
        Operand::Value(ValueId(i as u32))
    }

    /// Creates a new block with the given parameter types; returns the
    /// block id and the parameter values.
    pub fn new_block(&mut self, params: &[Ty]) -> (BlockId, Vec<Operand>) {
        let id = BlockId(self.func.blocks.len() as u32);
        let mut vals = Vec::with_capacity(params.len());
        for &ty in params {
            vals.push(Operand::Value(self.new_value(ty)));
        }
        let param_ids = vals.iter().map(|o| o.value().unwrap()).collect();
        self.func.blocks.push(Block {
            params: param_ids,
            instrs: Vec::new(),
            term: Term::Ret { value: None },
        });
        self.terminated.push(false);
        (id, vals)
    }

    /// Adds a parameter to an existing block after creation. Used by SSA
    /// construction (the frontend discovers a block needs a φ only once a
    /// back edge is seen). Existing branches to `b` must be patched with
    /// [`append_branch_arg`](Self::append_branch_arg).
    pub fn add_block_param(&mut self, b: BlockId, ty: Ty) -> Operand {
        let v = self.new_value(ty);
        self.func.blocks[b.0 as usize].params.push(v);
        Operand::Value(v)
    }

    /// Appends `arg` to every edge `pred -> target` in `pred`'s
    /// terminator. Panics if `pred` is unterminated or has no such edge.
    pub fn append_branch_arg(&mut self, pred: BlockId, target: BlockId, arg: Operand) {
        assert!(
            self.terminated[pred.0 as usize],
            "pred block not terminated yet"
        );
        let term = &mut self.func.blocks[pred.0 as usize].term;
        let mut patched = false;
        match term {
            Term::Br { target: t, args } if *t == target => {
                args.push(arg);
                patched = true;
            }
            Term::Br { .. } => {}
            Term::CondBr {
                then_target,
                then_args,
                else_target,
                else_args,
                ..
            } => {
                if *then_target == target {
                    then_args.push(arg);
                    patched = true;
                }
                if *else_target == target {
                    else_args.push(arg);
                    patched = true;
                }
            }
            Term::Ret { .. } => {}
        }
        assert!(patched, "no edge {pred:?} -> {target:?} to patch");
    }

    /// Redirects subsequent instructions into `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(
            !self.terminated[b.0 as usize],
            "cannot append to already-terminated block {b:?}"
        );
        self.cur = b;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Whether `b` already has its terminator.
    pub fn is_block_terminated(&self, b: BlockId) -> bool {
        self.terminated[b.0 as usize]
    }

    /// Number of blocks created so far.
    pub fn num_blocks(&self) -> usize {
        self.func.blocks.len()
    }

    fn new_value(&mut self, ty: Ty) -> ValueId {
        let id = ValueId(self.func.value_types.len() as u32);
        self.func.value_types.push(ty);
        id
    }

    fn push_value_instr(&mut self, op: Op, ty: Ty) -> Operand {
        assert!(
            !self.terminated[self.cur.0 as usize],
            "block already terminated"
        );
        let result = self.new_value(ty);
        let sid = self.mb.alloc_sid();
        self.func.blocks[self.cur.0 as usize].instrs.push(Instr {
            sid,
            op,
            result: Some(result),
        });
        Operand::Value(result)
    }

    fn push_void_instr(&mut self, op: Op) {
        assert!(
            !self.terminated[self.cur.0 as usize],
            "block already terminated"
        );
        let sid = self.mb.alloc_sid();
        self.func.blocks[self.cur.0 as usize].instrs.push(Instr {
            sid,
            op,
            result: None,
        });
    }

    fn operand_ty(&self, op: Operand) -> Ty {
        self.func.operand_ty(&op)
    }

    // ---- value-producing instructions ------------------------------------

    pub fn bin(&mut self, op: BinOp, a: Operand, b: Operand) -> Operand {
        let ty = self.operand_ty(a);
        self.push_value_instr(Op::Bin { op, a, b }, ty)
    }

    pub fn add(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Add, a, b)
    }
    pub fn sub(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Sub, a, b)
    }
    pub fn mul(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Mul, a, b)
    }
    pub fn fadd(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::FAdd, a, b)
    }
    pub fn fsub(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::FSub, a, b)
    }
    pub fn fmul(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::FMul, a, b)
    }
    pub fn fdiv(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::FDiv, a, b)
    }

    pub fn un(&mut self, op: UnOp, a: Operand) -> Operand {
        let ty = self.operand_ty(a);
        self.push_value_instr(Op::Un { op, a }, ty)
    }

    pub fn icmp(&mut self, pred: IPred, a: Operand, b: Operand) -> Operand {
        self.push_value_instr(Op::Icmp { pred, a, b }, Ty::I1)
    }

    pub fn fcmp(&mut self, pred: FPred, a: Operand, b: Operand) -> Operand {
        self.push_value_instr(Op::Fcmp { pred, a, b }, Ty::I1)
    }

    pub fn select(&mut self, cond: Operand, t: Operand, f: Operand) -> Operand {
        let ty = self.operand_ty(t);
        self.push_value_instr(Op::Select { cond, t, f }, ty)
    }

    pub fn cast(&mut self, kind: CastKind, a: Operand, to: Ty) -> Operand {
        self.push_value_instr(Op::Cast { kind, a, to }, to)
    }

    pub fn load(&mut self, addr: Operand, ty: Ty) -> Operand {
        self.push_value_instr(Op::Load { addr, ty }, ty)
    }

    pub fn gep(&mut self, base: Operand, index: Operand) -> Operand {
        self.push_value_instr(Op::Gep { base, index }, Ty::Ptr)
    }

    pub fn alloca(&mut self, words: Operand) -> Operand {
        self.push_value_instr(Op::Alloca { words }, Ty::Ptr)
    }

    /// Emits a call; returns the result operand for non-void callees.
    pub fn call(&mut self, func: FuncId, args: &[Operand]) -> Option<Operand> {
        let (_, ret) = self.mb.sig(func);
        match ret {
            Some(ty) => Some(self.push_value_instr(
                Op::Call {
                    func,
                    args: args.to_vec(),
                },
                ty,
            )),
            None => {
                self.push_void_instr(Op::Call {
                    func,
                    args: args.to_vec(),
                });
                None
            }
        }
    }

    // ---- void instructions ------------------------------------------------

    pub fn store(&mut self, addr: Operand, value: Operand) {
        self.push_void_instr(Op::Store { addr, value });
    }

    pub fn output(&mut self, value: Operand) {
        self.push_void_instr(Op::Output { value });
    }

    // ---- terminators --------------------------------------------------------

    fn terminate(&mut self, term: Term) {
        assert!(
            !self.terminated[self.cur.0 as usize],
            "block {:?} already terminated",
            self.cur
        );
        self.func.blocks[self.cur.0 as usize].term = term;
        self.terminated[self.cur.0 as usize] = true;
    }

    pub fn br(&mut self, target: BlockId, args: &[Operand]) {
        self.terminate(Term::Br {
            target,
            args: args.to_vec(),
        });
    }

    pub fn cond_br(
        &mut self,
        cond: Operand,
        then_target: BlockId,
        then_args: &[Operand],
        else_target: BlockId,
        else_args: &[Operand],
    ) {
        self.terminate(Term::CondBr {
            cond,
            then_target,
            then_args: then_args.to_vec(),
            else_target,
            else_args: else_args.to_vec(),
        });
    }

    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Term::Ret { value });
    }

    /// Installs the finished body into the module. Panics if any block is
    /// missing a terminator.
    pub fn finish(self) {
        for (i, t) in self.terminated.iter().enumerate() {
            assert!(*t, "block {i} of {} lacks a terminator", self.func.name);
        }
        self.mb.functions[self.id.0 as usize] = Some(self.func);
    }
}

/// Removes blocks unreachable from the entry, rewriting terminator
/// targets to the compacted block ids. Returns whether anything was
/// removed. A frontend lowering `if` arms that both return leaves the
/// join block orphaned; the verifier rejects such blocks, so the builder
/// drops them before the module is handed out.
fn prune_unreachable_blocks(f: &mut Function) -> bool {
    let reach = f.reachable_blocks();
    if reach.iter().all(|&r| r) {
        return false;
    }
    let mut remap = vec![u32::MAX; f.blocks.len()];
    let mut next = 0u32;
    for (i, &r) in reach.iter().enumerate() {
        if r {
            remap[i] = next;
            next += 1;
        }
    }
    let mut keep = reach.iter();
    f.blocks.retain(|_| *keep.next().unwrap());
    for b in &mut f.blocks {
        match &mut b.term {
            Term::Br { target, .. } => target.0 = remap[target.0 as usize],
            Term::CondBr {
                then_target,
                else_target,
                ..
            } => {
                then_target.0 = remap[then_target.0 as usize];
                else_target.0 = remap[else_target.0 as usize];
            }
            Term::Ret { .. } => {}
        }
    }
    true
}

/// Reassigns dense sids (preserving relative order) after pruning left
/// gaps where an unreachable block's instructions used to be.
fn renumber_sids(m: &mut Module) {
    let mut old: Vec<InstrId> = Vec::new();
    for f in &m.functions {
        for ins in f.instrs() {
            old.push(ins.sid);
        }
    }
    old.sort();
    let max = old.last().map_or(0, |s| s.0 as usize + 1);
    let mut map = vec![u32::MAX; max];
    for (new, o) in old.iter().enumerate() {
        map[o.0 as usize] = new as u32;
    }
    for f in &mut m.functions {
        for b in &mut f.blocks {
            for ins in &mut b.instrs {
                ins.sid = InstrId(map[ins.sid.0 as usize]);
            }
        }
    }
    m.num_instrs = old.len();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds `fn main(x: i64) -> i64 { if x > 0 { x*2 } else { 0 - x } }`.
    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("sample");
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        {
            let mut f = mb.define(main);
            let x = f.param(0);
            let (then_b, _) = f.new_block(&[]);
            let (else_b, _) = f.new_block(&[]);
            let (join, jvals) = f.new_block(&[Ty::I64]);
            let c = f.icmp(IPred::Sgt, x, Operand::i64(0));
            f.cond_br(c, then_b, &[], else_b, &[]);
            f.switch_to(then_b);
            let t = f.mul(x, Operand::i64(2));
            f.br(join, &[t]);
            f.switch_to(else_b);
            let e = f.sub(Operand::i64(0), x);
            f.br(join, &[e]);
            f.switch_to(join);
            f.output(jvals[0]);
            f.ret(Some(jvals[0]));
            f.finish();
        }
        mb.set_entry(main);
        mb.finish()
    }

    #[test]
    fn sids_dense_and_ordered() {
        let m = sample();
        let sids: Vec<u32> = m.all_instrs().iter().map(|(_, i)| i.sid.0).collect();
        assert_eq!(sids, (0..m.num_instrs as u32).collect::<Vec<_>>());
    }

    #[test]
    fn instruction_count() {
        let m = sample();
        // icmp, mul, sub, output.
        assert_eq!(m.num_instrs, 4);
    }

    #[test]
    fn block_params_typed() {
        let m = sample();
        let f = m.entry_func();
        let join = &f.blocks[3];
        assert_eq!(join.params.len(), 1);
        assert_eq!(f.ty_of(join.params[0]), Ty::I64);
    }

    #[test]
    fn globals_layout() {
        let mut mb = ModuleBuilder::new("g");
        let a = mb.global("a", 10);
        let b = mb.global("b", 5);
        match (a, b) {
            (Operand::Const(ca), Operand::Const(cb)) => {
                assert_eq!(ca.bits, 1);
                assert_eq!(cb.bits, 11);
            }
            _ => panic!("globals should be pointer constants"),
        }
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn unterminated_block_panics() {
        let mut mb = ModuleBuilder::new("bad");
        let f = mb.declare("f", &[], None);
        let mut fb = mb.define(f);
        let _ = fb.new_block(&[]); // never terminated, never reached
        fb.ret(None);
        fb.finish();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut mb = ModuleBuilder::new("bad2");
        let f = mb.declare("f", &[], None);
        let mut fb = mb.define(f);
        fb.ret(None);
        fb.ret(None);
    }

    #[test]
    fn call_result_type_follows_signature() {
        let mut mb = ModuleBuilder::new("call");
        let helper = mb.declare("helper", &[Ty::F64], Some(Ty::F64));
        let main = mb.declare("main", &[], None);
        {
            let mut f = mb.define(helper);
            let p = f.param(0);
            let r = f.fmul(p, Operand::f64(2.0));
            f.ret(Some(r));
            f.finish();
        }
        {
            let mut f = mb.define(main);
            let v = f.call(helper, &[Operand::f64(1.5)]).unwrap();
            f.output(v);
            f.ret(None);
            f.finish();
        }
        mb.set_entry(main);
        let m = mb.finish();
        let f = m.entry_func();
        let call = f.instrs().next().unwrap();
        assert_eq!(f.ty_of(call.result.unwrap()), Ty::F64);
    }
}

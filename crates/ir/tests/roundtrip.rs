//! Printer ↔ parser round-trip property.
//!
//! Any verified module — here, randomly generated through
//! [`ModuleBuilder`] with every opcode family, const type, and control
//! shape (diamond, block-param join, counted loop) in the mix — must
//! print to text that [`parse_module`] reconstructs to a *structurally
//! equal* module, and the reprint of the reconstruction must be the
//! identical text (printing is a fixed point). Generation is a pure
//! function of the proptest seed, so failures are reproducible.

use peppa_ir::{
    parse_module, verify, BinOp, CastKind, Const, FPred, IPred, Module, ModuleBuilder, Operand, Ty,
    UnOp,
};
use proptest::prelude::*;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Gen {
    s: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            s: seed.wrapping_mul(0x9E37_79B9).wrapping_add(1),
        }
    }
    fn below(&mut self, n: u64) -> u64 {
        splitmix(&mut self.s) % n
    }
    /// Full-range i64, biased toward small magnitudes half the time.
    fn int(&mut self) -> i64 {
        if self.below(2) == 0 {
            self.below(200) as i64 - 100
        } else {
            splitmix(&mut self.s) as i64
        }
    }
    /// Finite f64 in a range whose `{:?}` printing never uses exponent
    /// notation (the printer relies on Rust's shortest round-trip repr;
    /// the parser reads plain decimal).
    fn float(&mut self) -> f64 {
        self.below(2_000_000) as f64 * 0.001 - 1000.0
    }
}

/// Pools of in-scope operands, one per type the generator uses.
#[derive(Clone)]
struct Pool {
    ints: Vec<Operand>,
    floats: Vec<Operand>,
    bools: Vec<Operand>,
    ptrs: Vec<Operand>,
}

impl Pool {
    fn pick(&self, g: &mut Gen, v: &[Operand]) -> Operand {
        v[g.below(v.len() as u64) as usize]
    }
    fn int(&self, g: &mut Gen) -> Operand {
        self.pick(g, &self.ints.clone())
    }
    fn float(&self, g: &mut Gen) -> Operand {
        self.pick(g, &self.floats.clone())
    }
    fn boolean(&self, g: &mut Gen) -> Operand {
        self.pick(g, &self.bools.clone())
    }
    fn ptr(&self, g: &mut Gen) -> Operand {
        self.pick(g, &self.ptrs.clone())
    }
}

const INT_OPS: [BinOp; 10] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::SDiv,
    BinOp::SRem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::AShr,
];
const FLOAT_OPS: [BinOp; 4] = [BinOp::FAdd, BinOp::FSub, BinOp::FMul, BinOp::FDiv];
const IPREDS: [IPred; 7] = [
    IPred::Eq,
    IPred::Ne,
    IPred::Slt,
    IPred::Sle,
    IPred::Sgt,
    IPred::Sge,
    IPred::Ult,
];
const FPREDS: [FPred; 6] = [
    FPred::Oeq,
    FPred::One,
    FPred::Olt,
    FPred::Ole,
    FPred::Ogt,
    FPred::Oge,
];
const FUNOPS: [UnOp; 8] = [
    UnOp::FNeg,
    UnOp::Sqrt,
    UnOp::Sin,
    UnOp::Cos,
    UnOp::Exp,
    UnOp::Log,
    UnOp::Floor,
    UnOp::FAbs,
];

/// Emits `count` random instructions into the current block, growing the
/// pool with every result. Never emits terminators or calls.
fn emit_instrs(g: &mut Gen, fb: &mut peppa_ir::FunctionBuilder<'_>, pool: &mut Pool, count: u64) {
    for _ in 0..count {
        match g.below(12) {
            0..=2 => {
                let op = INT_OPS[g.below(INT_OPS.len() as u64) as usize];
                let (a, b) = (pool.int(g), pool.int(g));
                let r = fb.bin(op, a, b);
                pool.ints.push(r);
            }
            3..=4 => {
                let op = FLOAT_OPS[g.below(FLOAT_OPS.len() as u64) as usize];
                let (a, b) = (pool.float(g), pool.float(g));
                pool.floats.push(fb.bin(op, a, b));
            }
            5 => {
                let p = IPREDS[g.below(IPREDS.len() as u64) as usize];
                let (a, b) = (pool.int(g), pool.int(g));
                pool.bools.push(fb.icmp(p, a, b));
            }
            6 => {
                let p = FPREDS[g.below(FPREDS.len() as u64) as usize];
                let (a, b) = (pool.float(g), pool.float(g));
                pool.bools.push(fb.fcmp(p, a, b));
            }
            7 => {
                let (c, t, f) = (pool.boolean(g), pool.int(g), pool.int(g));
                pool.ints.push(fb.select(c, t, f));
            }
            8 => {
                let a = pool.float(g);
                let op = FUNOPS[g.below(FUNOPS.len() as u64) as usize];
                pool.floats.push(fb.un(op, a));
            }
            9 => {
                let a = pool.int(g);
                pool.ints.push(fb.un(UnOp::Not, a));
            }
            10 => match g.below(5) {
                0 => {
                    let a = pool.int(g);
                    pool.floats.push(fb.cast(CastKind::SiToFp, a, Ty::F64));
                }
                1 => {
                    let a = pool.float(g);
                    pool.ints.push(fb.cast(CastKind::FpToSi, a, Ty::I64));
                }
                2 => {
                    let a = pool.int(g);
                    pool.ptrs.push(fb.cast(CastKind::IntToPtr, a, Ty::Ptr));
                }
                3 => {
                    let a = pool.ptr(g);
                    pool.ints.push(fb.cast(CastKind::PtrToInt, a, Ty::I64));
                }
                _ => {
                    // The one place i32 values live: trunc, an i32-typed
                    // op with an i32 const (printer coverage), sext back.
                    let a = pool.int(g);
                    let t = fb.cast(CastKind::Trunc, a, Ty::I32);
                    let t = fb.bin(BinOp::Add, t, Operand::Const(Const::i32(g.int() as i32)));
                    pool.ints.push(fb.cast(CastKind::SExt, t, Ty::I64));
                }
            },
            _ => {
                let base = pool.ptr(g);
                let idx = Operand::i64(g.below(16) as i64);
                let p = fb.gep(base, idx);
                if g.below(2) == 0 {
                    let v = pool.int(g);
                    fb.store(p, v);
                } else {
                    pool.ints.push(fb.load(p, Ty::I64));
                }
                pool.ptrs.push(p);
            }
        }
    }
}

/// Builds one random module: globals (zero- and explicitly-initialized),
/// a helper with an `(i64, f64) -> i64` signature, and an entry whose
/// body runs a diamond into a block-param join, then a counted loop.
fn gen_module(seed: u64) -> Module {
    let mut g = Gen::new(seed);
    let mut mb = ModuleBuilder::new("roundtrip");
    let g0 = mb.global("buf", 8 + g.below(8));
    let init: Vec<u64> = (0..4).map(|_| splitmix(&mut g.s)).collect();
    let g1 = mb.global_init("tab", 4, init);

    let helper = mb.declare("helper", &[Ty::I64, Ty::F64], Some(Ty::I64));
    let main = mb.declare("main", &[Ty::I64, Ty::F64], None);

    let seed_pool = |g: &mut Gen| Pool {
        ints: vec![Operand::i64(g.int()), Operand::i64(g.int())],
        floats: vec![Operand::f64(g.float()), Operand::f64(g.float())],
        bools: vec![Operand::bool(g.below(2) == 0)],
        ptrs: vec![g0, g1, Operand::Const(Const::ptr(1 + g.below(8)))],
    };

    // helper: straight-line body over its params.
    {
        let mut fb = mb.define(helper);
        let mut pool = seed_pool(&mut g);
        pool.ints.push(fb.param(0));
        pool.floats.push(fb.param(1));
        let n = 3 + g.below(8);
        emit_instrs(&mut g, &mut fb, &mut pool, n);
        let r = pool.int(&mut g);
        fb.ret(Some(r));
        fb.finish();
    }

    // main: diamond -> join(params) -> loop(param) -> exit.
    {
        let mut fb = mb.define(main);
        let mut pool = seed_pool(&mut g);
        pool.ints.push(fb.param(0));
        pool.floats.push(fb.param(1));
        let words = fb.alloca(Operand::i64(4 + g.below(8) as i64));
        pool.ptrs.push(words);
        let n = 2 + g.below(6);
        emit_instrs(&mut g, &mut fb, &mut pool, n);
        let entry_pool = pool.clone();

        let (then_b, _) = fb.new_block(&[]);
        let (else_b, _) = fb.new_block(&[]);
        let (join_b, join_params) = fb.new_block(&[Ty::I64, Ty::F64]);
        let (loop_b, loop_params) = fb.new_block(&[Ty::I64]);
        let (exit_b, _) = fb.new_block(&[]);

        let c = pool.boolean(&mut g);
        fb.cond_br(c, then_b, &[], else_b, &[]);

        for arm in [then_b, else_b] {
            fb.switch_to(arm);
            let mut p = entry_pool.clone();
            let n = 1 + g.below(5);
            emit_instrs(&mut g, &mut fb, &mut p, n);
            let (i, fl) = (p.int(&mut g), p.float(&mut g));
            fb.br(join_b, &[i, fl]);
        }

        fb.switch_to(join_b);
        let mut p = entry_pool.clone();
        p.ints.push(join_params[0]);
        p.floats.push(join_params[1]);
        let n = 1 + g.below(5);
        emit_instrs(&mut g, &mut fb, &mut p, n);
        let hv = p.int(&mut g);
        let hf = p.float(&mut g);
        if let Some(r) = fb.call(helper, &[hv, hf]) {
            p.ints.push(r);
        }
        let start = p.int(&mut g);
        fb.br(loop_b, &[start]);

        fb.switch_to(loop_b);
        let mut lp = entry_pool.clone();
        lp.ints.push(loop_params[0]);
        let n = 1 + g.below(4);
        emit_instrs(&mut g, &mut fb, &mut lp, n);
        let next = fb.add(loop_params[0], Operand::i64(1));
        let cont = fb.icmp(IPred::Slt, next, Operand::i64(g.below(64) as i64));
        fb.cond_br(cont, loop_b, &[next], exit_b, &[]);

        fb.switch_to(exit_b);
        let out = lp.int(&mut g);
        let outf = lp.float(&mut g);
        fb.output(out);
        fb.output(outf);
        fb.ret(None);
        fb.finish();
    }

    mb.set_entry(main);
    mb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn printed_modules_reparse_to_structural_equality(seed in any::<u64>()) {
        let m = gen_module(seed);
        verify(&m).unwrap_or_else(|e| {
            panic!("seed {seed}: generated module does not verify: {} ({}, bb{:?})\n{m}", e.message, e.function, e.block)
        });
        let text = m.to_string();
        let re = parse_module(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: printed module failed to parse: {e}\n{text}"));
        prop_assert_eq!(&re, &m, "seed {}: parsed module differs structurally", seed);
        // Printing must be a fixed point of the round trip.
        prop_assert_eq!(re.to_string(), text, "seed {}: reprint differs", seed);
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Derives `serde::Serialize` / `serde::Deserialize` (the vendored
//! value-tree flavor) for the shapes this workspace uses: non-generic
//! structs (named, tuple, unit) and enums whose variants are unit,
//! tuple, or struct-like. Serde's JSON conventions are preserved: named
//! structs become objects, newtype structs unwrap to their inner value,
//! unit variants become strings, data-carrying variants become
//! single-key objects.
//!
//! No `syn`/`quote`: the input item is parsed with a small hand-rolled
//! scanner over `proc_macro::TokenStream` and the impl is emitted as a
//! source string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum Shape {
    Unit,
    /// Tuple struct/variant with `n` fields.
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(crate)`, ...) at the cursor.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Counts top-level comma-separated items in a token slice, treating
/// `<...>` angle-bracket nesting as one level (angle brackets are plain
/// puncts in a token stream, so `HashMap<String, u32>` holds a comma
/// that must not split a field).
fn split_top_level_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses the fields of a braced (named-field) body.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level_commas(&toks)
        .into_iter()
        .filter_map(|field_toks| {
            let i = skip_attrs_and_vis(&field_toks, 0);
            match field_toks.get(i) {
                Some(TokenTree::Ident(id)) => Some(Field {
                    name: id.to_string(),
                }),
                _ => None,
            }
        })
        .collect()
}

fn parse_tuple_arity(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level_commas(&toks).len()
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level_commas(&toks)
        .into_iter()
        .filter_map(|vt| {
            let i = skip_attrs_and_vis(&vt, 0);
            let name = match vt.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            let shape = match vt.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_arity(g))
                }
                // Unit variant, possibly with `= discriminant`.
                _ => Shape::Unit,
            };
            Some(Variant { name, shape })
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types (on `{name}`)");
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_arity(g))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                _ => panic!("derive: enum `{name}` has no body"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("derive: unsupported item kind `{other}`"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Shape::Named(fields) => object_expr(fields, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),",
                                binds.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = object_expr(fields, "");
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    src.parse()
        .expect("serde_derive: generated impl failed to parse")
}

/// `Value::Object` expression serializing `fields`; `prefix` is `self.`
/// for struct impls or empty for match-bound variant fields (bindings
/// are `&T`, which the blanket `&T: Serialize` impl handles).
fn object_expr(fields: &[Field], prefix: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            let n = &f.name;
            format!("(\"{n}\".to_string(), ::serde::Serialize::to_value(&{prefix}{n}))")
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("Ok({name})"),
                Shape::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| {
                            format!(
                                "::serde::Deserialize::from_value(__a.get({k}).ok_or_else(|| ::serde::DeError::new(\"{name}: missing tuple field {k}\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __a = __v.as_array().ok_or_else(|| ::serde::DeError::new(\"{name}: expected array\"))?;\n\
                         Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let n = &f.name;
                            format!(
                                "{n}: ::serde::Deserialize::from_value(__v.get(\"{n}\").ok_or_else(|| ::serde::DeError::new(\"{name}: missing field `{n}`\"))?)?"
                            )
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let keyed_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_value(__a.get({k}).ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: short tuple\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __a = __inner.as_array().ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: expected array\"))?; return Ok({name}::{vn}({})); }}",
                                elems.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let n = &f.name;
                                    format!(
                                        "{n}: ::serde::Deserialize::from_value(__inner.get(\"{n}\").ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: missing field `{n}`\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 if let ::serde::Value::Str(__s) = __v {{\n\
                 match __s.as_str() {{ {} _ => {{}} }}\n\
                 }}\n\
                 if let ::serde::Value::Object(__pairs) = __v {{\n\
                 if let Some((__tag, __inner)) = __pairs.first() {{\n\
                 match __tag.as_str() {{ {} _ => {{}} }}\n\
                 }}\n\
                 }}\n\
                 Err(::serde::DeError::new(\"no variant of {name} matched\"))\n\
                 }}\n\
                 }}",
                unit_arms.join("\n"),
                keyed_arms.join("\n")
            )
        }
    };
    src.parse()
        .expect("serde_derive: generated impl failed to parse")
}

//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of serde's surface the workspace actually uses:
//! `Serialize`/`Deserialize` traits (derivable via the sibling
//! `serde_derive` stub) built around a self-describing [`Value`] tree.
//! `serde_json` (also vendored) renders that tree as JSON.
//!
//! Conventions mirror serde's JSON data model so any artifact written by
//! this stub stays compatible with real serde if the dependency is ever
//! restored: unit enum variants serialize as strings, newtype/struct
//! variants as single-key objects, structs as objects, tuples as arrays.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (serde_json's `Value`, inlined
/// here so both `Serialize` and `Deserialize` can be defined against it).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (i8..i64, isize).
    Int(i64),
    /// Unsigned integers that exceed `i64::MAX` keep full precision.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (field declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Float(f) if f.fract() == 0.0 => Some(f as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f.fract() == 0.0 && f >= 0.0 => Some(f as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable path/kind mismatch message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize to the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| DeError::new("expected float"))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// Benchmark metadata uses `&'static str` names; round-tripping them
// through JSON requires leaking the owned string, which is fine for the
// long-lived registry data this is used on.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected string"))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for &T
where
    T: ?Sized,
{
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                Ok(($($t::from_value(
                    a.get($i).ok_or_else(|| DeError::new("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Keys render via their serialized form (strings stay strings,
        // numbers become their decimal rendering), sorted for stable
        // output since HashMap iteration order is unspecified.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        _ => String::from("<key>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let val = v.to_value();
        assert_eq!(Vec::<(f64, f64)>::from_value(&val).unwrap(), v);
    }

    #[test]
    fn object_lookup() {
        let o = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(o.get("a"), Some(&Value::Int(1)));
        assert_eq!(o.get("b"), None);
    }
}

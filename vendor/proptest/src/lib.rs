//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(...)]`, numeric-range and
//! string-pattern strategies, `any::<T>()`, `Just`, `prop_oneof!`,
//! `proptest::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its inputs but is not minimized), and the RNG is seeded from the test
//! name, so every run explores the same deterministic sequence of cases.

use std::fmt::Debug;
use std::ops::Range;

/// SplitMix64 — small, fast, and good enough for test-case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(name: &str) -> TestRng {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A failed property assertion (carried out of the test body so the
/// harness can report the generating inputs).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values. Unlike real proptest there is no value
/// tree: `sample` directly produces one value.
pub trait Strategy {
    type Value: Debug + Clone;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// `any::<T>()` — the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub trait Arbitrary: Debug + Clone {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats spanning many magnitudes (real proptest also
        // biases away from NaN/inf by default).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(120) as i32 - 60) as f64;
        mantissa * exp.exp2()
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T: Debug + Clone> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug + Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

// ------------------------------------------------------- string patterns

/// String literals act as regex-like strategies. Supported subset:
/// a sequence of atoms, each `\PC` (any printable char), `.`, a literal
/// char, an escape (`\n`, `\t`, `\\`), or a char class `[...]` with
/// ranges; optionally followed by `{lo,hi}` repetition.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom into a set of candidate chars.
        let candidates: Vec<char> = match chars[i] {
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') => {
                        // `\PC`: printable (non-control) characters.
                        i += 1; // consume the class letter (C)
                        (' '..='~').collect()
                    }
                    Some('n') => vec!['\n'],
                    Some('t') => vec!['\t'],
                    Some(&c) => vec![c],
                    None => panic!("pattern `{pattern}`: trailing backslash"),
                }
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' {
                        i += 1;
                        match chars[i] {
                            'n' => set.push('\n'),
                            't' => set.push('\t'),
                            c => set.push(c),
                        }
                    } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        set.extend(lo..=hi);
                        i += 2;
                    } else {
                        set.push(chars[i]);
                    }
                    i += 1;
                }
                set
            }
            '.' => (' '..='~').collect(),
            c => vec![c],
        };
        i += 1;
        // Optional `{lo,hi}` repetition.
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("pattern `{pattern}`: unclosed {{"));
            let spec: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim()
                        .parse::<usize>()
                        .expect("bad repetition lower bound"),
                    b.trim()
                        .parse::<usize>()
                        .expect("bad repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(
            !candidates.is_empty(),
            "pattern `{pattern}`: empty char class"
        );
        let span = (hi - lo + 1) as u64;
        let n = lo + rng.below(span) as usize;
        for _ in 0..n {
            out.push(candidates[rng.below(candidates.len() as u64) as usize]);
        }
    }
    out
}

pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ----------------------------------------------------------------- macros

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __args_dbg = format!(concat!($("  ", stringify!($arg), " = {:?}\n"),*), $(&$arg),*);
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}\ninputs:\n{}",
                        stringify!($name), __case + 1, __cfg.cases, e, __args_dbg
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                concat!("assertion failed: ", stringify!($cond), ": {}"),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?}): {}",
                stringify!($a), stringify!($b), __a, __b, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$(
            ::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>
        ),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new("ranges");
        for _ in 0..1000 {
            let i = (-5i64..7).sample(&mut rng);
            assert!((-5..7).contains(&i));
            let f = (0.5f64..2.5).sample(&mut rng);
            assert!((0.5..2.5).contains(&f));
            let u = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::new("vec");
        for _ in 0..200 {
            let v = collection::vec(0i64..10, 3..40).sample(&mut rng);
            assert!((3..40).contains(&v.len()));
        }
    }

    #[test]
    fn char_class_pattern() {
        let mut rng = TestRng::new("pattern");
        for _ in 0..100 {
            let s = "[a-c0-1]{2,5}".sample(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc01".contains(c)), "{s:?}");
        }
        let p = "\\PC{0,20}".sample(&mut rng);
        assert!(p.chars().all(|c| (' '..='~').contains(&c)));
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::new("x");
        let mut b = TestRng::new("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(a in 0i64..100, xs in collection::vec(0u32..9, 0..5)) {
            prop_assert!(a >= 0);
            prop_assert_eq!(xs.len(), xs.len());
        }

        #[test]
        fn oneof_picks_arms(tok in prop_oneof![Just("a"), Just("b")]) {
            prop_assert!(tok == "a" || tok == "b");
        }
    }
}

//! Offline stand-in for `crossbeam`, covering the `thread::scope` API
//! the workspace uses. Since Rust 1.63, `std::thread::scope` provides
//! the same borrow-friendly scoped spawning, so this is a thin adapter
//! that keeps crossbeam's call shape (`scope(|s| ...)` returning
//! `Result`, spawn closures receiving a `&Scope` argument).

pub mod thread {
    /// Mirrors `crossbeam::thread::Scope`; wraps the std scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a `&Scope` (as
        /// crossbeam's does), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope for spawning borrowing threads, joining them all
    /// before returning. Matches crossbeam's signature: returns
    /// `Err(Box<dyn Any>)` if any child panicked. (std's scope
    /// propagates child panics after joining, so a panic payload here is
    /// resurfaced as an `Err` to keep crossbeam's `.expect(...)` call
    /// sites working.)
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut data = vec![0u64; 8];
        super::thread::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| {
                    *slot = i as u64 * 2;
                });
            }
        })
        .unwrap();
        assert_eq!(data, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn panicking_child_reports_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}

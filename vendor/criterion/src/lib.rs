//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, throughput
//! annotation, `bench_function`/`bench_with_input`) with a simple
//! wall-clock harness: warm up briefly, time adaptive batches, report
//! median-of-samples ns/iter and derived throughput. No statistical
//! regression analysis or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timing driver passed to bench closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_count: usize,
}

impl Bencher<'_> {
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warm-up: let caches/branch predictors settle and estimate the
        // per-iteration cost to size batches (~10ms per sample).
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(30) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let (sample_size, throughput) = (self.sample_size, self.throughput);
        self.criterion.run_one(&full, sample_size, throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Parses harness CLI args (`cargo bench` appends `--bench`; a bare
    /// token filters benchmark names, like real criterion).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--profile-time" | "--noplot" | "--quiet" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time" => {
                    let _ = args.next();
                }
                s if !s.starts_with('-') => self.filter = Some(s.to_string()),
                _ => {}
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = id.into().id;
        self.run_one(&full, 10, None, f);
        self
    }

    fn run_one(
        &mut self,
        name: &str,
        sample_count: usize,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples: Vec<f64> = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_count,
        });
        if samples.is_empty() {
            println!("{name:<48} (no samples — bencher.iter never called)");
            return;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.2} Melem/s", n as f64 / median / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.2} MiB/s", n as f64 / median / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{name:<48} median {:>12}  [{} .. {}]{rate}",
            fmt_time(median),
            fmt_time(lo),
            fmt_time(hi)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_compose() {
        assert_eq!(BenchmarkId::new("f", "x").id, "f/x");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("other", |_b| {
            ran = true;
        });
        assert!(!ran);
    }
}

//! Offline stand-in for `serde_json`: renders the vendored
//! [`serde::Value`] tree as JSON text and parses JSON text back.
//! Output format matches serde_json's defaults (`to_string` compact,
//! `to_string_pretty` with two-space indents), so checked-in artifacts
//! are stable if the real dependency is ever restored.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization error (kept as one type: this stub's
/// serialization is infallible, parsing is not).
pub type Error = DeError;
pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&format_f64(*f)),
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |o, x, d| write_value(o, x, indent, d),
            '[',
            ']',
        ),
        Value::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            pairs.len(),
            indent,
            depth,
            |o, (k, x), d| {
                write_json_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
            '{',
            '}',
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I, T>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, usize),
    open: char,
    close: char,
) where
    I: Iterator<Item = T>,
{
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// serde_json prints floats via Grisu; `{f}` in Rust produces the same
/// shortest-roundtrip form for finite values. Non-finite values are not
/// valid JSON; serde_json emits `null` for them.
fn format_f64(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{:.1}", f)
    } else {
        format!("{f}")
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(_) => self.number(),
            None => Err(DeError::new("unexpected end of input")),
        }
    }

    fn keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(DeError::new(format!("bad keyword at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(DeError::new(format!(
                        "expected , or }} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(DeError::new(format!(
                        "expected , or ] at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(DeError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| DeError::new("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::new("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(DeError::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| DeError::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::new("invalid number"))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| DeError::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let mut s = String::new();
        write_value(&mut s, &v, None, 0);
        assert_eq!(s, r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_rendering() {
        let v = Value::Object(vec![("x".into(), Value::Float(1.5))]);
        let mut s = String::new();
        write_value(&mut s, &v, Some(2), 0);
        assert_eq!(s, "{\n  \"x\": 1.5\n}");
    }

    #[test]
    fn parse_roundtrip() {
        let src =
            r#"{"name": "hpccg", "trials": 1000, "p": 0.125, "tags": ["a", "b"], "none": null}"#;
        let v = parse_value(src).unwrap();
        assert_eq!(v.get("trials").unwrap().as_u64(), Some(1000));
        assert_eq!(v.get("p").unwrap().as_f64(), Some(0.125));
        assert_eq!(v.get("name").unwrap().as_str(), Some("hpccg"));
        let back = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(parse_value(&back).unwrap(), v);
    }

    #[test]
    fn integer_floats_keep_decimal_point() {
        // serde_json renders f64 3.0 as "3.0", distinguishing it from the
        // integer 3 — downstream plotting scripts rely on this.
        let mut s = String::new();
        write_value(&mut s, &Value::Float(3.0), None, 0);
        assert_eq!(s, "3.0");
    }

    #[test]
    fn escapes() {
        let mut s = String::new();
        write_value(&mut s, &Value::Str("a\"b\\c\nd".into()), None, 0);
        assert_eq!(s, r#""a\"b\\c\nd""#);
        assert_eq!(parse_value(&s).unwrap(), Value::Str("a\"b\\c\nd".into()));
    }
}

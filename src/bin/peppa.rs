//! `peppa` — command-line front end to the PEPPA-X toolchain.
//!
//! Operates on MiniC source files (or the built-in benchmarks via
//! `--bench NAME`):
//!
//! ```text
//! peppa compile  prog.mc                          dump the compiled PIR
//! peppa opt      prog.mc [-O0|-O1|-O2] [--print-pipeline]
//!                optimize through the rewrite engine and dump the
//!                optimized PIR (stdout); per-pass statistics go to
//!                stderr. Defaults to -O2; `--print-pipeline` lists the
//!                pass pipeline for the level and exits
//! peppa run      prog.mc --input 8,2.5 [--profile] golden run + profile
//!                [--engine interp|compiled] selects the execution
//!                backend (bit-identical; compiled is ~10x faster)
//! peppa inject   prog.mc --input 8,2.5 [--trials 1000] [--seed 1]
//!                [--threads N] [--static-prune] [--trace-propagation]
//!                [--snapshots K] [--engine interp|compiled]
//!                [--trace-out t.jsonl] [--metrics-out m.json] [--quiet]
//!                with --static-prune, trials whose sampled fault cell
//!                the interprocedural reachability analysis proves
//!                masked are counted Benign without executing them
//!                (gated: pruning disengages when the table predicts
//!                too few skips to pay for its bookkeeping);
//!                with --trace-propagation, every trial runs under the
//!                shadow-taint engine and the campaign reports how far
//!                each fault travelled (sink reached vs extinguished)
//!                plus a per-instruction propagation heatmap;
//!                with --snapshots K, the golden prefix is captured at
//!                up to K stratified fork points and every trial resumes
//!                from the latest snapshot before its fault site —
//!                bit-identical outcomes, a fraction of the wall time.
//!                Composition: --snapshots composes with
//!                --trace-propagation; --static-prune composes with
//!                neither (see `peppa_inject::validate_flags`)
//! peppa analyze  prog.mc                          pruning report
//! peppa lint     prog.mc [--deny-warnings] [--json]
//!                verify + static findings (dead values, unreachable
//!                blocks, always-taken branches, trapping accesses);
//!                exits non-zero on errors, or on warnings with
//!                --deny-warnings
//! peppa trace    prog.mc --input 8,2.5 --site 12 --bit 40
//! peppa corpus   prog.mc --input 8,2.5 --count 200 > corpus.json
//! peppa search   prog.mc --spec "n:int:4:64:4:8,s:float:0.1:9:0.1:1" \
//!                --ref 32,1.0 [--generations 50]  find the SDC-bound input
//! peppa ci       prog.mc --spec ... --ref ... --budget-sdc 0.25
//!                exits non-zero if the SDC bound exceeds the budget
//!                (the paper's §7.1.2 continuous-integration use case)
//! ```
//!
//! `--spec` entries are `name:int|float:lo:hi:small_lo:small_hi`, one per
//! program input, defining the search space and the small-FI-input
//! window.
//!
//! Observability flags (available on every subcommand that executes the
//! pipeline): `--trace-out FILE.jsonl` writes a replayable JSONL run
//! journal, `--metrics-out FILE.json` writes a metrics snapshot on exit,
//! `--chrome-trace FILE.json` writes a Chrome trace-event file (open it
//! in Perfetto or `chrome://tracing`), `--quiet` suppresses the live
//! progress line, `--threads N` sets the FI worker count (0 = all
//! cores).
//!
//! Every subcommand accepts `--opt-level N` (or `-O0`/`-O1`/`-O2`): the
//! module is run through the analysis-driven rewrite engine before the
//! command executes, so `run`, `inject`, `search`, `ci` and `lint` all
//! operate on the optimized program. The default is `-O0` (no rewriting)
//! everywhere except `peppa opt`, which defaults to `-O2`.

use peppa_x::analysis::FaultReach;
use peppa_x::apps::{ArgSpec, Benchmark};
use peppa_x::core::{PeppaConfig, PeppaX};
use peppa_x::inject::{
    generate_corpus, run_campaign_observed, run_campaign_pruned_gated_observed,
    run_campaign_snapshotted_observed, run_campaign_snapshotted_traced_observed,
    run_campaign_traced_observed, trace_propagation, validate_flags, CampaignConfig, InjectMode,
    PruneGate, SnapshotConfig, StaticPrune,
};
use peppa_x::obs::{
    ChromeTrace, JsonlJournal, MetricsRegistry, MultiObserver, ProgressReporter, PropagationHeatmap,
};
use peppa_x::vm::{
    CompiledModule, Engine, EngineKind, ExecLimits, Injection, InjectionTarget, OpcodeProfile,
};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("peppa: {msg}");
            ExitCode::from(2)
        }
    }
}

struct Opts {
    input: Option<Vec<f64>>,
    spec: Option<Vec<ArgSpec>>,
    reference: Option<Vec<f64>>,
    trials: u32,
    seed: u64,
    generations: u64,
    site: Option<u64>,
    bit: u32,
    count: usize,
    budget_sdc: f64,
    bench: Option<String>,
    threads: usize,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    chrome_trace: Option<String>,
    quiet: bool,
    profile: bool,
    deny_warnings: bool,
    json: bool,
    static_prune: bool,
    trace_propagation: bool,
    snapshots: Option<u32>,
    engine: EngineKind,
    opt_level: Option<peppa_x::analysis::OptLevel>,
    print_pipeline: bool,
}

fn parse_opts(rest: &[String]) -> Result<(Option<String>, Opts), String> {
    let mut file = None;
    let mut o = Opts {
        input: None,
        spec: None,
        reference: None,
        trials: 1000,
        seed: 1,
        generations: 50,
        site: None,
        bit: 0,
        count: 200,
        budget_sdc: 1.0,
        bench: None,
        threads: 0,
        trace_out: None,
        metrics_out: None,
        chrome_trace: None,
        quiet: false,
        profile: false,
        deny_warnings: false,
        json: false,
        static_prune: false,
        trace_propagation: false,
        snapshots: None,
        engine: EngineKind::Interp,
        opt_level: None,
        print_pipeline: false,
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--input" => o.input = Some(parse_floats(&val("--input")?)?),
            "--ref" => o.reference = Some(parse_floats(&val("--ref")?)?),
            "--spec" => o.spec = Some(parse_spec(&val("--spec")?)?),
            "--trials" => o.trials = val("--trials")?.parse().map_err(|_| "bad --trials")?,
            "--seed" => o.seed = val("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--generations" => {
                o.generations = val("--generations")?
                    .parse()
                    .map_err(|_| "bad --generations")?
            }
            "--site" => o.site = Some(val("--site")?.parse().map_err(|_| "bad --site")?),
            "--bit" => o.bit = val("--bit")?.parse().map_err(|_| "bad --bit")?,
            "--count" => o.count = val("--count")?.parse().map_err(|_| "bad --count")?,
            "--budget-sdc" => {
                o.budget_sdc = val("--budget-sdc")?
                    .parse()
                    .map_err(|_| "bad --budget-sdc")?
            }
            "--bench" => o.bench = Some(val("--bench")?),
            "--threads" => o.threads = val("--threads")?.parse().map_err(|_| "bad --threads")?,
            "--trace-out" => o.trace_out = Some(val("--trace-out")?),
            "--metrics-out" => o.metrics_out = Some(val("--metrics-out")?),
            "--chrome-trace" => o.chrome_trace = Some(val("--chrome-trace")?),
            "--quiet" => o.quiet = true,
            "--profile" => o.profile = true,
            "--deny-warnings" => o.deny_warnings = true,
            "--json" => o.json = true,
            "--static-prune" => o.static_prune = true,
            "--trace-propagation" => o.trace_propagation = true,
            "--snapshots" => {
                o.snapshots = Some(val("--snapshots")?.parse().map_err(|_| "bad --snapshots")?)
            }
            "--engine" => o.engine = val("--engine")?.parse()?,
            "--opt-level" => o.opt_level = Some(val("--opt-level")?.parse()?),
            "-O0" | "-O1" | "-O2" => o.opt_level = Some(a.parse()?),
            "--print-pipeline" => o.print_pipeline = true,
            other if !other.starts_with("--") && file.is_none() => {
                file = Some(other.to_string());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok((file, o))
}

fn parse_floats(s: &str) -> Result<Vec<f64>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad number `{p}`"))
        })
        .collect()
}

fn parse_spec(s: &str) -> Result<Vec<ArgSpec>, String> {
    s.split(',')
        .map(|entry| {
            let parts: Vec<&str> = entry.trim().split(':').collect();
            if parts.len() != 6 {
                return Err(format!(
                    "spec entry `{entry}` must be name:int|float:lo:hi:small_lo:small_hi"
                ));
            }
            let name: &'static str = Box::leak(parts[0].to_string().into_boxed_str());
            let num = |i: usize| -> Result<f64, String> {
                parts[i]
                    .parse()
                    .map_err(|_| format!("bad number `{}`", parts[i]))
            };
            match parts[1] {
                "int" => Ok(ArgSpec::int(
                    name,
                    num(2)? as i64,
                    num(3)? as i64,
                    (num(4)? as i64, num(5)? as i64),
                )),
                "float" => Ok(ArgSpec::float(name, num(2)?, num(3)?, (num(4)?, num(5)?))),
                t => Err(format!("bad type `{t}` (int or float)")),
            }
        })
        .collect()
}

fn load_program(file: Option<String>, o: &Opts) -> Result<Benchmark, String> {
    if let Some(name) = &o.bench {
        return peppa_x::apps::benchmark_by_name(name)
            .ok_or_else(|| format!("unknown benchmark `{name}`"));
    }
    let file = file.ok_or("no input file (or --bench NAME) given")?;
    let source = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
    let module = peppa_x::lang::compile(&source, &file).map_err(|e| format!("{file}: {e}"))?;
    let nparams = module.entry_func().params.len();

    let args: Vec<ArgSpec> = match &o.spec {
        Some(spec) => {
            if spec.len() != nparams {
                return Err(format!(
                    "--spec has {} entries, program takes {nparams}",
                    spec.len()
                ));
            }
            spec.clone()
        }
        None => (0..nparams)
            .map(|i| {
                let name: &'static str = Box::leak(format!("arg{i}").into_boxed_str());
                ArgSpec::float(name, -1e6, 1e6, (0.0, 10.0))
            })
            .collect(),
    };
    let reference_input = o
        .reference
        .clone()
        .or_else(|| o.input.clone())
        .unwrap_or_else(|| args.iter().map(|a| a.clamp((a.lo + a.hi) / 2.0)).collect());

    Ok(Benchmark {
        name: Box::leak(file.clone().into_boxed_str()),
        suite: "user",
        description: "user program",
        source: Box::leak(source.into_boxed_str()),
        module,
        args,
        reference_input,
    })
}

/// Builds the observer stack requested by the flags: JSONL journal
/// (`--trace-out`), metrics registry (`--metrics-out`), Chrome trace
/// exporter (`--chrome-trace`), a propagation heatmap when
/// `--trace-propagation` is on, and a live progress line unless
/// `--quiet`. The registry and heatmap handles are returned separately
/// so the snapshot/table can be written on exit.
#[allow(clippy::type_complexity)]
fn build_observer(
    o: &Opts,
) -> Result<
    (
        MultiObserver,
        Option<Arc<MetricsRegistry>>,
        Option<Arc<PropagationHeatmap>>,
    ),
    String,
> {
    let mut multi = MultiObserver::new();
    let mut registry = None;
    let mut heatmap = None;
    if let Some(path) = &o.trace_out {
        let journal = JsonlJournal::create(path).map_err(|e| format!("{path}: {e}"))?;
        multi.push(Arc::new(journal));
    }
    if o.metrics_out.is_some() {
        let reg = Arc::new(MetricsRegistry::new());
        multi.push(Arc::clone(&reg) as Arc<dyn peppa_x::obs::Observer>);
        registry = Some(reg);
    }
    if let Some(path) = &o.chrome_trace {
        multi.push(Arc::new(ChromeTrace::create(path)));
    }
    if o.trace_propagation {
        let heat = Arc::new(PropagationHeatmap::new());
        multi.push(Arc::clone(&heat) as Arc<dyn peppa_x::obs::Observer>);
        heatmap = Some(heat);
    }
    if !o.quiet {
        multi.push(Arc::new(ProgressReporter::default()));
    }
    Ok((multi, registry, heatmap))
}

fn write_metrics(o: &Opts, registry: &Option<Arc<MetricsRegistry>>) -> Result<(), String> {
    if let (Some(path), Some(reg)) = (&o.metrics_out, registry) {
        std::fs::write(path, reg.snapshot_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(
            "usage: peppa <compile|opt|run|inject|analyze|lint|trace|corpus|search|ci> ...".into(),
        );
    };
    let (file, o) = parse_opts(rest)?;
    let level = o.opt_level.unwrap_or(if cmd == "opt" {
        peppa_x::analysis::OptLevel::O2
    } else {
        peppa_x::analysis::OptLevel::O0
    });
    if cmd == "opt" && o.print_pipeline {
        println!("{level} pipeline:");
        for p in peppa_x::analysis::rewrite::pipeline(level) {
            println!("  {}", p.name());
        }
        return Ok(ExitCode::SUCCESS);
    }
    let mut bench = load_program(file, &o)?;
    // Rewrite the module up front so every subcommand — run, inject,
    // search, ci, lint, analyze — operates on the optimized program.
    let opt_stats = (level != peppa_x::analysis::OptLevel::O0).then(|| {
        let r = peppa_x::analysis::optimize(&bench.module, level);
        bench.module = r.module;
        r.stats
    });
    let limits = ExecLimits::default();
    let input = o
        .input
        .clone()
        .unwrap_or_else(|| bench.reference_input.clone());
    let (observer, registry, heatmap) = build_observer(&o)?;
    let mut exit = ExitCode::SUCCESS;

    match cmd.as_str() {
        "compile" => {
            print!("{}", bench.module);
        }
        "opt" => {
            // Optimized PIR on stdout (re-parseable), statistics on
            // stderr so redirection keeps the module clean.
            print!("{}", bench.module);
            if let Some(stats) = &opt_stats {
                eprint!("{}", peppa_x::analysis::rewrite::render_stats(stats));
            }
        }
        "run" => {
            let code =
                (o.engine == EngineKind::Compiled).then(|| CompiledModule::lower(&bench.module));
            let eng = Engine::new(&bench.module, limits, code.as_ref());
            let out = if o.profile {
                let bits = peppa_x::vm::encode_inputs(bench.module.entry_func(), &input);
                let mut prof = OpcodeProfile::new(64);
                let out = eng.run_with_hook(&bits, None, &mut prof);
                println!("{}", prof.hot_table(&bench.module, 10));
                out
            } else {
                eng.run_numeric(&input, None)
            };
            println!("status: {:?} ({} engine)", out.status, o.engine);
            for (i, w) in out.output.iter().enumerate() {
                println!(
                    "output[{i}] = {} (as f64: {})",
                    *w as i64,
                    f64::from_bits(*w)
                );
            }
            println!(
                "dynamic instructions: {} ({} fault sites), coverage {:.1}%",
                out.profile.dynamic,
                out.profile.value_dynamic,
                out.profile.coverage() * 100.0
            );
        }
        "inject" => {
            let cfg = CampaignConfig {
                trials: o.trials,
                seed: o.seed,
                threads: o.threads,
                engine: o.engine,
                ..Default::default()
            };
            let mode = validate_flags(o.snapshots, o.static_prune, o.trace_propagation)
                .map_err(|e| e.to_string())?;
            let print_snapshot_stats = |stats: &peppa_x::inject::SnapshotStats| {
                println!(
                    "snapshots: {} captured ({:.1} MiB), {} trials restored, {} full runs, {} converged exits, {} prefix instrs saved",
                    stats.snapshots,
                    stats.bytes as f64 / (1024.0 * 1024.0),
                    stats.restores,
                    stats.full_runs,
                    stats.converged_exits,
                    stats.prefix_instrs_saved
                );
            };
            let r = match mode {
                InjectMode::Traced => {
                    let tr =
                        run_campaign_traced_observed(&bench.module, &input, limits, cfg, &observer)
                            .map_err(|e| e.to_string())?;
                    let seeded = tr.trials.iter().filter(|t| t.report.seeded).count();
                    println!(
                        "propagation: {} seeded faults — {} reached a sink, {} extinguished, {} dormant at exit",
                        seeded,
                        tr.propagated(),
                        tr.extinguished(),
                        seeded - tr.propagated() - tr.extinguished()
                    );
                    if let Some(h) = &heatmap {
                        print!("{}", h.render(10));
                    }
                    tr.campaign
                }
                InjectMode::SnapshottedTraced { snapshots } => {
                    let snap = SnapshotConfig {
                        snapshots,
                        ..Default::default()
                    };
                    let st = run_campaign_snapshotted_traced_observed(
                        &bench.module,
                        &input,
                        limits,
                        cfg,
                        snap,
                        &observer,
                    )
                    .map_err(|e| e.to_string())?;
                    let tr = st.traced;
                    let seeded = tr.trials.iter().filter(|t| t.report.seeded).count();
                    println!(
                        "propagation: {} seeded faults — {} reached a sink, {} extinguished, {} dormant at exit",
                        seeded,
                        tr.propagated(),
                        tr.extinguished(),
                        seeded - tr.propagated() - tr.extinguished()
                    );
                    if let Some(h) = &heatmap {
                        print!("{}", h.render(10));
                    }
                    print_snapshot_stats(&st.stats);
                    tr.campaign
                }
                InjectMode::Snapshotted { snapshots } => {
                    let snap = SnapshotConfig {
                        snapshots,
                        ..Default::default()
                    };
                    let sr = run_campaign_snapshotted_observed(
                        &bench.module,
                        &input,
                        limits,
                        cfg,
                        snap,
                        &observer,
                    )
                    .map_err(|e| e.to_string())?;
                    print_snapshot_stats(&sr.stats);
                    sr.campaign
                }
                InjectMode::Pruned => {
                    let fr = FaultReach::analyze(&bench.module);
                    let prune = StaticPrune {
                        cells: fr.skip_cells(cfg.burst),
                        burst: cfg.burst,
                    };
                    let (masked, total) = fr.masked_cells(cfg.burst);
                    let g = run_campaign_pruned_gated_observed(
                        &bench.module,
                        &input,
                        limits,
                        cfg,
                        &prune,
                        PruneGate::default(),
                        &observer,
                    )
                    .map_err(|e| e.to_string())?;
                    println!(
                        "static prune: {masked}/{total} cells provably masked, gate {} (predicted skip {:.2}%), {} of {} trials skipped ({:.2}%)",
                        if g.decision.applied { "engaged" } else { "disengaged" },
                        g.decision.predicted_skip_ratio * 100.0,
                        g.result.skipped,
                        g.result.campaign.trials,
                        g.result.skip_ratio() * 100.0
                    );
                    g.result.campaign
                }
                InjectMode::Plain => {
                    run_campaign_observed(&bench.module, &input, limits, cfg, &observer)
                        .map_err(|e| e.to_string())?
                }
            };
            println!(
                "trials {}: SDC {:.2}% (CI ±{:.2}pp)  crash {:.2}%  hang {:.2}%  benign {:.2}%",
                r.trials,
                r.sdc_prob() * 100.0,
                r.sdc_ci.half_width * 100.0,
                r.crash_prob() * 100.0,
                r.hang as f64 / r.trials as f64 * 100.0,
                r.benign as f64 / r.trials as f64 * 100.0
            );
        }
        "analyze" => {
            let p = peppa_x::analysis::prune_fi_space(&bench.module);
            println!(
                "{} static instructions, {} injectable, {} dataflow subgroups, pruning ratio {:.1}%",
                bench.module.num_instrs,
                p.injectable,
                p.groups.len(),
                p.pruning_ratio() * 100.0
            );
        }
        "lint" => {
            use peppa_x::obs::{Event, Observer};
            observer.on_event(&Event::AnalysisStarted {
                benchmark: bench.name.to_string(),
                pass: "lint".into(),
            });
            let t0 = std::time::Instant::now();
            let report = peppa_x::analysis::lint_module(&bench.module);
            observer.on_event(&Event::AnalysisFinished {
                pass: "lint".into(),
                findings: report.lints.len() as u64,
                wall_ns: t0.elapsed().as_nanos() as u64,
            });
            if o.json {
                println!("{}", serde_json::to_string_pretty(&report).unwrap());
            } else {
                for l in &report.lints {
                    println!("{l}");
                }
                println!(
                    "{}: {} error(s), {} warning(s)",
                    bench.name,
                    report.errors(),
                    report.warnings()
                );
            }
            let errors = report.errors();
            let warnings = report.warnings();
            if errors > 0 || (o.deny_warnings && warnings > 0) {
                exit = ExitCode::from(1);
            }
        }
        "trace" => {
            let site = o.site.ok_or("trace needs --site <dynamic value index>")?;
            let inj = Injection {
                target: InjectionTarget::DynamicIndex(site),
                bit: o.bit,
                burst: 0,
            };
            let t = trace_propagation(&bench.module, &input, inj, limits, 10);
            println!("outcome: {:?}", t.outcome);
            println!(
                "{:>12} {:>14} {:>10}",
                "dynamic", "corrupt words", "outputs"
            );
            for s in &t.samples {
                println!(
                    "{:>12} {:>14} {:>10}",
                    s.dynamic, s.corrupted_mem_words, s.corrupted_outputs
                );
            }
        }
        "corpus" => {
            let corpus = generate_corpus(&bench.module, &input, limits, o.count, o.seed)
                .map_err(|e| e.to_string())?;
            println!("{}", serde_json_string(&corpus)?);
        }
        "search" | "ci" => {
            let cfg = PeppaConfig {
                seed: o.seed,
                final_fi_trials: o.trials,
                threads: o.threads,
                engine: o.engine,
                ..Default::default()
            };
            let px = PeppaX::prepare(&bench, cfg).map_err(|e| e.to_string())?;
            let report = px.search_observed(&[o.generations], &observer);
            let bound = report.sdc_bound();
            println!(
                "SDC-bound input: {:?}\nbounded SDC probability: {:.2}% (CI ±{:.2}pp)",
                bound.input,
                bound.sdc.sdc_prob() * 100.0,
                bound.sdc.sdc_ci.half_width * 100.0
            );
            if cmd == "ci" {
                if bound.sdc.sdc_prob() > o.budget_sdc {
                    eprintln!(
                        "FAIL: SDC bound {:.2}% exceeds budget {:.2}%",
                        bound.sdc.sdc_prob() * 100.0,
                        o.budget_sdc * 100.0
                    );
                    exit = ExitCode::from(1);
                } else {
                    println!("PASS: SDC bound within budget {:.2}%", o.budget_sdc * 100.0);
                }
            }
        }
        other => return Err(format!("unknown command `{other}`")),
    }
    peppa_x::obs::Observer::flush(&observer);
    write_metrics(&o, &registry)?;
    Ok(exit)
}

// Tiny hand-rolled JSON encoding for the corpus (the root crate avoids a
// serde_json dependency; the bench crate uses serde_json for its own
// artifacts).
fn serde_json_string(corpus: &[peppa_x::inject::CorpusEntry]) -> Result<String, String> {
    let mut s = String::from("[\n");
    for (i, e) in corpus.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"dyn_index\": {}, \"bit\": {}, \"outcome\": \"{:?}\", \
             \"corrupted_mem_words\": {}, \"corrupted_outputs\": {}}}{}\n",
            e.dyn_index,
            e.bit,
            e.outcome,
            e.corrupted_mem_words,
            e.corrupted_outputs,
            if i + 1 < corpus.len() { "," } else { "" }
        ));
    }
    s.push(']');
    Ok(s)
}

//! # PEPPA-X
//!
//! A self-contained Rust reproduction of *"PEPPA-X: Finding Program Test
//! Inputs to Bound Silent Data Corruption Vulnerability in HPC
//! Applications"* (SC '21).
//!
//! This facade crate re-exports the workspace's public API. See the
//! individual crates for details:
//!
//! * [`ir`] — PIR, the typed intermediate representation.
//! * [`vm`] — the PIR interpreter with profiling and injection hooks.
//! * [`lang`] — MiniC, the small frontend used to author benchmarks.
//! * [`inject`] — the LLFI-style statistical fault injector.
//! * [`analysis`] — static dataflow analysis and FI-space pruning.
//! * [`stats`] — rank correlation, confidence intervals, RNG.
//! * [`ga`] — the genetic search engine.
//! * [`apps`] — the seven HPC benchmark kernels.
//! * [`core`] — the PEPPA-X pipeline and the baseline search.
//! * [`protect`] — selective instruction duplication and stress tests.
//! * [`obs`] — structured tracing, metrics, and run journals.

pub use peppa_analysis as analysis;
pub use peppa_apps as apps;
pub use peppa_core as core;
pub use peppa_ga as ga;
pub use peppa_inject as inject;
pub use peppa_ir as ir;
pub use peppa_lang as lang;
pub use peppa_obs as obs;
pub use peppa_protect as protect;
pub use peppa_stats as stats;
pub use peppa_vm as vm;
